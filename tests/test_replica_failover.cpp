// Replicated serving tier tests (net/replica_set.h, DESIGN.md §13):
// rendezvous placement determinism, health-state hysteresis, session
// migration on replica death, OVERLOADED-as-failover-signal, SYNC snapshot
// shipping (verified swap, bit-flip rejection, pull bootstrap), whole-replica
// chaos (ChaosReplica), cross-version frame rejection against live peers,
// and the 3-replica kill-one-mid-soak acceptance scenario.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/client.h"
#include "net/fault_injection.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/rng.h"

namespace cs2p {
namespace {

SessionFeatures features(const std::string& suffix = "0") {
  return {"ISP" + suffix, "AS" + suffix, "P" + suffix,
          "C" + suffix,   "S" + suffix,  "Pfx" + suffix};
}

/// Deterministic in-process model: initial = `initial`, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  explicit EchoPlusOneModel(double initial = 2.0) : initial_(initial) {}
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      explicit S(double initial) : initial_(initial) {}
      std::optional<double> predict_initial() const override {
        return initial_;
      }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double initial_;
      double last_ = 0.0;
    };
    return std::make_unique<S>(initial_);
  }

 private:
  double initial_;
};

// -- Rendezvous placement ---------------------------------------------------

TEST(ReplicaSet, SessionKeyAndPreferenceOrderAreDeterministic) {
  const std::uint64_t key_a = make_session_key(features("a"), 8.0, 1);
  EXPECT_EQ(key_a, make_session_key(features("a"), 8.0, 1));
  // Nonce and features both perturb the key — identical-feature sessions
  // must not all pile onto one replica.
  EXPECT_NE(key_a, make_session_key(features("a"), 8.0, 2));
  EXPECT_NE(key_a, make_session_key(features("b"), 8.0, 1));

  // Scores are stable per (key, name): two independently constructed sets
  // over the same names rank identically.
  std::vector<std::unique_ptr<PredictionServer>> servers;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<PredictionServer>(
        std::make_shared<EchoPlusOneModel>()));
    ports.push_back(servers.back()->port());
  }
  ReplicaSet set_a(ports), set_b(ports);
  for (std::uint64_t key : {key_a, make_session_key(features("c"), 2.0, 7)}) {
    EXPECT_EQ(set_a.preference_order(key), set_b.preference_order(key));
    EXPECT_EQ(set_a.preference_order(key).size(), 3u);
  }
}

TEST(ReplicaSet, RemovingAReplicaOnlyMovesItsOwnSessions) {
  // The minimal-disruption property rendezvous hashing buys: dropping one
  // name leaves every session that preferred another name untouched.
  const std::vector<std::string> names{"r0", "r1", "r2"};
  for (std::uint64_t key = 1; key <= 200; ++key) {
    std::size_t best = 0;
    std::uint64_t best_score = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::uint64_t score = rendezvous_score(key, names[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == 2) continue;  // r2's sessions are the ones allowed to move
    std::size_t best_without = best == 0 ? 0 : 1;
    std::uint64_t s0 = rendezvous_score(key, names[0]);
    std::uint64_t s1 = rendezvous_score(key, names[1]);
    EXPECT_EQ(best_without == 0, s0 > s1);
    EXPECT_EQ(best, best_without);
  }
}

// -- Health hysteresis ------------------------------------------------------

TEST(ReplicaSet, HealthWalksSuspectDownAndRecovers) {
  // Reserve a port by binding and releasing it: connects then fail fast.
  std::uint16_t port = 0;
  {
    auto [listener, bound] = listen_loopback(0);
    port = bound;
  }
  ReplicaSetConfig config;
  config.client.max_retries = 0;
  config.client.recv_timeout_ms = 200;
  config.client.send_timeout_ms = 200;
  config.down_after_failures = 2;
  config.recover_after_successes = 2;
  config.down_probe_after_ms = 0;  // probe immediately in tests
  ReplicaSet set(std::vector<std::uint16_t>{port}, config);

  EXPECT_EQ(set.health(0), ReplicaHealth::kHealthy);
  EXPECT_THROW(set.hello(features(), 1.0), TransportError);
  EXPECT_EQ(set.health(0), ReplicaHealth::kSuspect);
  EXPECT_THROW(set.hello(features(), 1.0), TransportError);
  EXPECT_EQ(set.health(0), ReplicaHealth::kDown);

  // Resurrect a real server on the reserved port: hysteresis demands a
  // success streak before HEALTHY, and the outage lands in the recovery
  // histogram.
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), port);
  EXPECT_NO_THROW(set.hello(features("x"), 1.0));
  EXPECT_EQ(set.health(0), ReplicaHealth::kDown) << "one success is not enough";
  EXPECT_NO_THROW(set.hello(features("y"), 1.0));
  EXPECT_EQ(set.health(0), ReplicaHealth::kHealthy);
  const std::string scrape = set.metrics().scrape();
  EXPECT_NE(scrape.find("cs2p_client_replica_recovery_seconds_count 1"),
            std::string::npos)
      << scrape;
}

TEST(ReplicaSet, HealthNamesAreStable) {
  EXPECT_EQ(replica_health_name(ReplicaHealth::kHealthy), "HEALTHY");
  EXPECT_EQ(replica_health_name(ReplicaHealth::kSuspect), "SUSPECT");
  EXPECT_EQ(replica_health_name(ReplicaHealth::kDown), "DOWN");
}

// -- Failover ---------------------------------------------------------------

TEST(ReplicaSet, SessionMigratesWhenItsReplicaDies) {
  std::vector<std::unique_ptr<PredictionServer>> servers;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<PredictionServer>(
        std::make_shared<EchoPlusOneModel>()));
    ports.push_back(servers.back()->port());
  }
  ReplicaSetConfig config;
  config.client.max_retries = 1;
  config.client.backoff_initial_ms = 1;
  config.client.backoff_max_ms = 5;
  ReplicaSet set(ports, config);

  const SessionResponse session = set.hello(features(), 4.0);
  EXPECT_DOUBLE_EQ(session.initial_mbps, 2.0);
  const std::size_t home = set.session_replica(session.session_id);
  EXPECT_DOUBLE_EQ(set.observe_response(session.session_id, 5.0).mbps, 6.0);

  servers[home].reset();  // the whole replica dies, sessions and all

  // The next operation migrates via HELLO replay and still answers. The
  // migrated session restarts its filter (last=0), so OBSERVE(3) -> 4.
  EXPECT_DOUBLE_EQ(set.observe_response(session.session_id, 3.0).mbps, 4.0);
  EXPECT_NE(set.session_replica(session.session_id), home);
  EXPECT_EQ(set.failovers(), 1u);
  // Subsequent traffic sticks to the new replica — no further failovers.
  EXPECT_DOUBLE_EQ(set.predict_response(session.session_id, 2).mbps, 5.0);
  EXPECT_EQ(set.failovers(), 1u);
  set.bye(session.session_id);
}

TEST(ReplicaSet, OverloadedReplyIsAFailoverSignalNotARetry) {
  // Replica A has a 1-connection cap, eaten by a parked raw connection, so
  // every new connect is answered with ERR OVERLOADED. Replica B is fine.
  ServerConfig small;
  small.max_connections = 1;
  auto server_a = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>(), small);
  auto server_b = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>());
  FdHandle parked = connect_loopback(server_a->port());
  // Wait until the parked connection occupies the slot.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server_a->metrics().scrape().find(
             "cs2p_server_active_connections 1") == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ReplicaSetConfig config;
  config.client.max_retries = 1;
  config.client.backoff_initial_ms = 1;
  config.client.backoff_max_ms = 2;
  ReplicaSet set(std::vector<std::uint16_t>{server_a->port(), server_b->port()},
                 config);

  // Every HELLO must land (on B when A sheds it); OVERLOADED replies are
  // counted in the dedicated registry counter, not retried into A's cap.
  for (int i = 0; i < 16; ++i) {
    const SessionResponse session =
        set.hello(features("s" + std::to_string(i)), 1.0);
    EXPECT_DOUBLE_EQ(session.initial_mbps, 2.0);
  }
  std::uint64_t overloaded = set.replica_client(0).overloaded_replies() +
                             set.replica_client(1).overloaded_replies();
  EXPECT_GT(overloaded, 0u) << "no session ever preferred the capped replica";
  const std::string scrape = set.metrics().scrape();
  EXPECT_NE(scrape.find("cs2p_client_overloaded_replies_total"),
            std::string::npos);
  EXPECT_NE(scrape.find("cs2p_client_failovers_total"), std::string::npos);
}

// -- SYNC snapshot shipping -------------------------------------------------

/// sync_apply for tests: bytes are "initial=<value>"; anything else throws.
std::shared_ptr<const PredictorModel> parse_test_snapshot(
    const std::string& bytes) {
  const std::string prefix = "initial=";
  if (!bytes.starts_with(prefix))
    throw std::runtime_error("unrecognized snapshot payload");
  return std::make_shared<EchoPlusOneModel>(
      std::stod(bytes.substr(prefix.size())));
}

TEST(Sync, PushVerifiesAndHotSwaps) {
  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(2.0), config);
  PredictionClient client(server.port());

  EXPECT_DOUBLE_EQ(client.hello(features("pre"), 1.0).initial_mbps, 2.0);
  client.push_snapshot("initial=7.5");
  EXPECT_EQ(server.syncs_applied(), 1u);
  EXPECT_EQ(server.models_swapped(), 1u);
  // New sessions serve the shipped model; the accepted snapshot is
  // republished for SYNCFETCH chaining.
  EXPECT_DOUBLE_EQ(client.hello(features("post"), 1.0).initial_mbps, 7.5);
  EXPECT_EQ(client.fetch_snapshot(), "initial=7.5");
}

TEST(Sync, MultiChunkSnapshotSurvivesPushAndFetch) {
  // > 2 chunks of payload, binary content: exercises the chunking loop on
  // both directions and byte-for-byte reassembly.
  std::string big = "initial=3.25\n";  // stod stops at the newline
  big.reserve(2 * kSyncChunkBytes + 1024);
  Rng rng(42);
  while (big.size() < 2 * kSyncChunkBytes + 777)
    big += static_cast<char>(rng.uniform_index(256));

  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  PredictionClient client(server.port());
  client.push_snapshot(big);
  EXPECT_EQ(server.syncs_applied(), 1u);
  EXPECT_DOUBLE_EQ(client.hello(features(), 1.0).initial_mbps, 3.25);
  EXPECT_EQ(client.fetch_snapshot(), big);
}

TEST(Sync, BitFlippedSnapshotIsRejectedAndNeverSwapsIn) {
  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(2.0), config);

  const std::string clean = "initial=9.0";
  std::string corrupt = clean;
  corrupt[corrupt.size() - 2] ^= 0x10;  // one flipped bit in flight

  // Declare the clean snapshot's checksum but ship the corrupted bytes —
  // what a torn write or flaky NIC produces. COMMIT must answer
  // SYNC_REJECTED and the served model must be untouched.
  FdHandle raw = connect_loopback(server.port());
  const auto round_trip = [&raw](const Request& request) {
    send_frame(raw, serialize_request(request));
    const auto reply = recv_frame(raw);
    if (!reply.has_value()) throw std::runtime_error("connection closed");
    return parse_response(*reply);
  };
  ASSERT_TRUE(std::holds_alternative<OkResponse>(
      round_trip(SyncBeginRequest{clean.size(), sync_checksum(clean)})));
  ASSERT_TRUE(std::holds_alternative<OkResponse>(
      round_trip(SyncChunkRequest{corrupt})));
  const Response commit = round_trip(SyncCommitRequest{});
  const auto* err = std::get_if<ErrorResponse>(&commit);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, WireErrorCode::kSyncRejected);

  EXPECT_EQ(server.syncs_rejected(), 1u);
  EXPECT_EQ(server.syncs_applied(), 0u);
  EXPECT_EQ(server.models_swapped(), 0u) << "corrupt model must never swap in";
  PredictionClient client(server.port());
  EXPECT_DOUBLE_EQ(client.hello(features(), 1.0).initial_mbps, 2.0);
  EXPECT_THROW(client.fetch_snapshot(), ServerError);  // nothing published
}

TEST(Sync, OutOfOrderAndOversizedShipmentsAreRejected) {
  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  config.max_sync_bytes = 1024;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  PredictionClient client(server.port());

  // COMMIT and DATA without a BEGIN answer SYNC_REJECTED.
  try {
    client.push_snapshot(std::string(2048, 'x'));  // over max_sync_bytes
    FAIL() << "oversized snapshot accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kSyncRejected);
  }
  EXPECT_EQ(server.syncs_applied(), 0u);
  EXPECT_GT(server.syncs_rejected(), 0u);
}

TEST(Sync, DisabledByDefaultRefusesShipments) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());  // no sync_apply
  PredictionClient client(server.port());
  try {
    client.push_snapshot("initial=1.0");
    FAIL() << "SYNC accepted without sync_apply";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kSyncRejected);
  }
  EXPECT_EQ(server.models_swapped(), 0u);
}

// -- SYNC vs zero-downtime drain (the §13 x §14 interaction) ----------------

TEST(Sync, PushArrivingMidDrainIsCleanlyRejected) {
  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(2.0), config);
  PredictionClient client(server.port());
  const auto session = client.hello(features(), 1.0);  // holds the drain open

  // A model push landing on an already-admitted connection after the drain
  // starts: a draining replica is about to disappear, so starting a new
  // shipment is refused outright — never half-staged, never a torn swap.
  server.begin_drain();
  try {
    client.push_snapshot("initial=9.0");
    FAIL() << "draining replica accepted a new SYNC shipment";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kSyncRejected);
  }
  EXPECT_EQ(server.syncs_applied(), 0u);
  EXPECT_EQ(server.models_swapped(), 0u);

  // The in-flight session keeps serving on the untouched incumbent.
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 3.0), 4.0);
  client.bye(session.session_id);
  EXPECT_TRUE(server.wait_drained(2'000));
}

TEST(Sync, ShipmentStagedBeforeDrainCommitsAtomically) {
  ServerConfig config;
  config.sync_apply = parse_test_snapshot;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(2.0), config);

  const std::string bytes = "initial=7.5";
  FdHandle raw = connect_loopback(server.port());
  const auto round_trip = [&raw](const Request& request) {
    send_frame(raw, serialize_request(request));
    const auto reply = recv_frame(raw);
    if (!reply.has_value()) throw std::runtime_error("connection closed");
    return parse_response(*reply);
  };
  ASSERT_TRUE(std::holds_alternative<OkResponse>(
      round_trip(SyncBeginRequest{bytes.size(), sync_checksum(bytes)})));
  ASSERT_TRUE(std::holds_alternative<OkResponse>(
      round_trip(SyncChunkRequest{bytes})));

  // Drain starts with the shipment fully staged and verified bytes already
  // on the replica: the commit still applies atomically (verify -> decode ->
  // swap is one step) — the other leg of "rejected or swapped, never torn".
  server.begin_drain();
  const Response commit = round_trip(SyncCommitRequest{});
  EXPECT_TRUE(std::holds_alternative<OkResponse>(commit))
      << "staged-before-drain commit must still apply";
  EXPECT_EQ(server.syncs_applied(), 1u);
  EXPECT_EQ(server.syncs_rejected(), 0u);
  EXPECT_EQ(server.models_swapped(), 1u);
  EXPECT_TRUE(server.wait_drained(2'000));
}

// -- Cross-version frame rejection against live peers -----------------------

TEST(CrossVersion, V3ClientAgainstV4ServerGetsCleanRejection) {
  // A v3 (pre-SYNC) peer sends a version-3 frame to a live v4 server. The
  // server must drop the connection at the frame header — the client sees
  // prompt EOF, never a hang or a half-parsed reply.
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  FdHandle raw = connect_loopback(server.port());
  const std::string payload = "STATS";
  std::string frame;
  frame += static_cast<char>(3);  // old version byte
  frame += static_cast<char>(0);
  frame += static_cast<char>(0);
  frame += static_cast<char>(payload.size());
  frame += payload;
  std::vector<std::byte> bytes(frame.size());
  std::memcpy(bytes.data(), frame.data(), frame.size());
  send_all(raw, bytes);

  std::byte sink[16];
  ASSERT_TRUE(wait_readable(raw, /*timeout_ms=*/5000))
      << "server neither replied nor closed within the deadline";
  EXPECT_EQ(::recv(raw.get(), sink, sizeof(sink), 0), 0)
      << "expected EOF, got bytes or an error";
}

TEST(CrossVersion, V4ClientAgainstV3ServerGetsProtocolError) {
  // The inverse: a v4 client reads a reply framed with version byte 3. The
  // framing layer must throw ProtocolError before any payload parsing.
  auto [listener, port] = listen_loopback(0);
  std::thread v3_server([&listener] {
    FdHandle conn = accept_connection(listener);
    const std::string payload = "OK";
    std::string frame;
    frame += static_cast<char>(3);
    frame += static_cast<char>(0);
    frame += static_cast<char>(0);
    frame += static_cast<char>(payload.size());
    frame += payload;
    std::vector<std::byte> bytes(frame.size());
    std::memcpy(bytes.data(), frame.data(), frame.size());
    send_all(conn, bytes);
  });
  FdHandle client = connect_loopback(port);
  EXPECT_THROW(recv_frame(client), ProtocolError);
  v3_server.join();
}

// -- ChaosReplica -----------------------------------------------------------

TEST(ChaosReplica, DiesAfterQuotaAndResurrectsOnSamePort) {
  ReplicaFaultSpec fault;
  fault.die_after_requests = 3;
  fault.dead_for_ms = 50;
  ChaosReplica replica([] { return std::make_shared<EchoPlusOneModel>(); },
                       ServerConfig{}, fault);
  const std::uint16_t port = replica.port();
  ASSERT_TRUE(replica.alive());

  ClientConfig fast;
  fast.max_retries = 0;
  PredictionClient client(port, fast);
  const SessionResponse session = client.hello(features(), 1.0);
  client.observe(session.session_id, 1.0);
  client.predict(session.session_id, 1);
  replica.poll();  // quota reached -> killed
  EXPECT_FALSE(replica.alive());
  EXPECT_EQ(replica.kills(), 1u);
  EXPECT_THROW(client.observe(session.session_id, 2.0), TransportError);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  replica.poll();  // dwell elapsed -> resurrected on the same port
  ASSERT_TRUE(replica.alive());
  EXPECT_EQ(replica.resurrections(), 1u);
  EXPECT_EQ(replica.port(), port);
  // The resurrected server is fresh (old sessions are gone), but a new
  // HELLO on the same port serves immediately.
  PredictionClient fresh(port, fast);
  EXPECT_DOUBLE_EQ(fresh.hello(features(), 1.0).initial_mbps, 2.0);
}

// -- The acceptance scenario: 3 replicas, kill one mid-soak -----------------

TEST(ChaosSoak, KillOneReplicaMidSoakDropsNoSessions) {
  constexpr int kSessions = 64;
  constexpr int kChunks = 24;
  // One registry across the tier and the client set: the acceptance
  // criterion is that failover/time-to-recover metrics are visible via a
  // STATS scrape on a *surviving* replica.
  auto registry = std::make_shared<obs::MetricsRegistry>();
  ServerConfig server_config;
  server_config.metrics = registry;
  server_config.max_connections = 16;  // the set multiplexes per replica
  ReplicaFaultSpec fault;
  fault.die_after_requests = 0;  // killed explicitly mid-soak
  fault.dead_for_ms = 400;
  fault.resurrect = true;

  std::vector<std::unique_ptr<ChaosReplica>> replicas;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<ChaosReplica>(
        [] { return std::make_shared<EchoPlusOneModel>(); }, server_config,
        fault));
    ports.push_back(replicas.back()->port());
  }

  ReplicaSetConfig set_config;
  set_config.client.recv_timeout_ms = 2'000;
  set_config.client.send_timeout_ms = 2'000;
  set_config.client.max_retries = 1;
  set_config.client.backoff_initial_ms = 1;
  set_config.client.backoff_max_ms = 10;
  set_config.down_probe_after_ms = 100;
  set_config.metrics = registry;
  ReplicaSet set(ports, set_config);

  std::atomic<int> completed{0};
  std::atomic<int> dropped{0};
  std::atomic<long> max_chunk_us{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> players;
  players.reserve(kSessions);
  for (int p = 0; p < kSessions; ++p) {
    players.emplace_back([&, p] {
      while (!start.load()) std::this_thread::yield();
      try {
        const SessionResponse session =
            set.hello(features("p" + std::to_string(p)), p % 24);
        for (int chunk = 0; chunk < kChunks; ++chunk) {
          const auto t0 = std::chrono::steady_clock::now();
          set.observe_response(session.session_id, 1.0 + 0.1 * chunk);
          const long us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          long seen = max_chunk_us.load();
          while (us > seen && !max_chunk_us.compare_exchange_weak(seen, us)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        set.bye(session.session_id);
        completed.fetch_add(1);
      } catch (const std::exception&) {
        dropped.fetch_add(1);
      }
    });
  }
  start.store(true);
  // Let the soak get going, then kill one replica outright. Its monitor
  // resurrects it after the dwell; surviving replicas absorb the sessions.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  replicas[0]->kill_now();
  replicas[0]->start_monitor();
  for (auto& player : players) player.join();

  EXPECT_EQ(dropped.load(), 0) << "sessions dropped during replica kill";
  EXPECT_EQ(completed.load(), kSessions);
  EXPECT_GE(replicas[0]->kills(), 1u);
  // Bounded per-chunk stall: worst chunk rides one failover — deadlines,
  // one retry round and a HELLO replay — far under the 10 s of a player
  // abandoning the stream.
  EXPECT_LT(max_chunk_us.load(), 10'000'000L);

  // Failover metrics must be visible via a STATS scrape on a surviving
  // replica (the tier shares the registry, so any live node exports them).
  PredictionClient scraper(replicas[1]->port());
  const std::string exposition = scraper.stats().exposition;
  EXPECT_NE(exposition.find("cs2p_client_failovers_total"), std::string::npos);
  EXPECT_NE(exposition.find("cs2p_client_replica_health"), std::string::npos);
  EXPECT_GT(set.failovers(), 0u) << "the kill was never noticed";
}

}  // namespace
}  // namespace cs2p
