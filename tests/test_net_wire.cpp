// Tests for the wire protocol (net/wire.h): parse/serialize round trips,
// malformed-input handling, and framing over a real loopback socket.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/rng.h"

namespace cs2p {
namespace {

SessionFeatures sample_features() {
  return {"ISP1", "AS10", "Province2", "City2-1", "Server3", "Pfx42"};
}

TEST(Wire, HelloRoundTrip) {
  const HelloRequest hello{sample_features(), 13.75};
  const Request parsed = parse_request(serialize_request(hello));
  const auto* out = std::get_if<HelloRequest>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->features, sample_features());
  EXPECT_DOUBLE_EQ(out->start_hour, 13.75);
}

TEST(Wire, ObservePredictByeRoundTrip) {
  {
    const Request parsed = parse_request(serialize_request(ObserveRequest{7, 2.5}));
    const auto* out = std::get_if<ObserveRequest>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->session_id, 7u);
    EXPECT_DOUBLE_EQ(out->throughput_mbps, 2.5);
  }
  {
    const Request parsed = parse_request(serialize_request(PredictRequest{9, 5}));
    const auto* out = std::get_if<PredictRequest>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->steps_ahead, 5u);
  }
  {
    const Request parsed = parse_request(serialize_request(ByeRequest{11}));
    ASSERT_NE(std::get_if<ByeRequest>(&parsed), nullptr);
  }
}

TEST(Wire, ResponseRoundTrips) {
  {
    const SessionResponse in{42, 3.25, true, "ISP+City@daypart"};
    const Response parsed = parse_response(serialize_response(in));
    const auto* out = std::get_if<SessionResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->session_id, 42u);
    EXPECT_DOUBLE_EQ(out->initial_mbps, 3.25);
    EXPECT_TRUE(out->used_global_model);
    EXPECT_EQ(out->cluster_label, "ISP+City@daypart");
  }
  {
    const Response parsed = parse_response(serialize_response(PredictionResponse{1.5}));
    const auto* out = std::get_if<PredictionResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_DOUBLE_EQ(out->mbps, 1.5);
    EXPECT_EQ(out->flags, 0u);
  }
  {
    const Response parsed = parse_response(serialize_response(OkResponse{}));
    EXPECT_NE(std::get_if<OkResponse>(&parsed), nullptr);
  }
  {
    const Response parsed = parse_response(serialize_response(
        ErrorResponse{WireErrorCode::kInternal, "something broke"}));
    const auto* out = std::get_if<ErrorResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->code, WireErrorCode::kInternal);
    EXPECT_EQ(out->message, "something broke");
  }
}

TEST(Wire, ErrorCodeRoundTrips) {
  for (const WireErrorCode code :
       {WireErrorCode::kBadRequest, WireErrorCode::kUnknownSession,
        WireErrorCode::kInvalidSample, WireErrorCode::kOverloaded,
        WireErrorCode::kShuttingDown, WireErrorCode::kUnsupported,
        WireErrorCode::kInternal, WireErrorCode::kSyncRejected}) {
    const Response parsed =
        parse_response(serialize_response(ErrorResponse{code, "detail text"}));
    const auto* out = std::get_if<ErrorResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->code, code);
    EXPECT_EQ(out->message, "detail text");
    EXPECT_EQ(wire_error_code_from_name(wire_error_code_name(code)), code);
  }
}

// -- SYNC verbs (protocol v4): snapshot shipping ----------------------------

TEST(Wire, SyncBeginRoundTrip) {
  const SyncBeginRequest in{123456789ull, 0xdeadbeefcafef00dull};
  const Request parsed = parse_request(serialize_request(in));
  const auto* out = std::get_if<SyncBeginRequest>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->total_bytes, 123456789ull);
  EXPECT_EQ(out->checksum, 0xdeadbeefcafef00dull);
}

TEST(Wire, SyncChunkCarriesArbitraryBytes) {
  // Snapshot bytes are raw: embedded newlines, NULs and frame-like headers
  // must survive verbatim — SYNCDATA is length-delimited, not line-parsed.
  std::string data = "line1\nline2\n";
  data += '\0';
  data += "SYNCCOMMIT\xff\x01 binary";
  for (int b = 0; b < 256; ++b) data += static_cast<char>(b);
  const Request parsed = parse_request(serialize_request(SyncChunkRequest{data}));
  const auto* out = std::get_if<SyncChunkRequest>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->data, data);
}

TEST(Wire, SyncCommitAndFetchRoundTrip) {
  {
    const Request parsed = parse_request(serialize_request(SyncCommitRequest{}));
    EXPECT_NE(std::get_if<SyncCommitRequest>(&parsed), nullptr);
  }
  {
    const Request parsed =
        parse_request(serialize_request(SyncFetchRequest{987654321ull}));
    const auto* out = std::get_if<SyncFetchRequest>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->offset, 987654321ull);
  }
}

TEST(Wire, SnapshotChunkResponseRoundTrip) {
  SnapshotChunkResponse in;
  in.total_bytes = 1'000'000;
  in.checksum = 0x0123456789abcdefull;
  in.offset = 48 * 1024;
  in.data = std::string("\x00\x01\xff raw\npayload", 16);
  const Response parsed = parse_response(serialize_response(in));
  const auto* out = std::get_if<SnapshotChunkResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->total_bytes, in.total_bytes);
  EXPECT_EQ(out->checksum, in.checksum);
  EXPECT_EQ(out->offset, in.offset);
  EXPECT_EQ(out->data, in.data);
}

TEST(Wire, SyncChecksumMatchesModelStoreFnv) {
  // The wire checksum is FNV-1a 64 — the exact algorithm model_store uses
  // for its snapshot footer, so a trainer checksums once. Pin the constants.
  EXPECT_EQ(sync_checksum(""), 0xcbf29ce484222325ull);  // offset basis
  EXPECT_EQ(sync_checksum("a"),
            (0xcbf29ce484222325ull ^ 'a') * 0x100000001b3ull);
  // A single flipped bit changes the checksum.
  std::string bytes(1024, 'x');
  const std::uint64_t clean = sync_checksum(bytes);
  bytes[512] ^= 0x04;
  EXPECT_NE(sync_checksum(bytes), clean);
}

TEST(Wire, MalformedSyncPayloadsThrow) {
  EXPECT_THROW(parse_request("SYNCBEGIN"), ProtocolError);
  EXPECT_THROW(parse_request("SYNCBEGIN 100"), ProtocolError);
  EXPECT_THROW(parse_request("SYNCBEGIN 100 nothex!"), ProtocolError);
  EXPECT_THROW(parse_request("SYNCFETCH"), ProtocolError);
  EXPECT_THROW(parse_request("SYNCFETCH -1"), ProtocolError);
  EXPECT_THROW(parse_response("SNAPSHOT 10 abc"), ProtocolError);
  EXPECT_THROW(parse_response("SNAPSHOT 10 0123456789abcdef"), ProtocolError);
}

TEST(Wire, PredictionFlagsRoundTripAllValues) {
  // Protocol v2: PRED carries a serve-flags byte. Every value survives.
  for (unsigned flags = 0; flags <= 0xff; ++flags) {
    const PredictionResponse in{3.5, static_cast<std::uint8_t>(flags)};
    const Response parsed = parse_response(serialize_response(in));
    const auto* out = std::get_if<PredictionResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_DOUBLE_EQ(out->mbps, 3.5);
    EXPECT_EQ(out->flags, flags);
  }
}

TEST(Wire, PredictionWithoutFlagsTokenParsesAsPrimary) {
  // A v1 peer sends "PRED <mbps>" with no flags token; decode as primary.
  const Response parsed = parse_response("PRED 2.75");
  const auto* out = std::get_if<PredictionResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_DOUBLE_EQ(out->mbps, 2.75);
  EXPECT_EQ(out->flags, 0u);
}

TEST(Wire, PredictionFlagsOutOfRangeThrows) {
  EXPECT_THROW(parse_response("PRED 2.75 256"), ProtocolError);
  EXPECT_THROW(parse_response("PRED 2.75 -1"), ProtocolError);
  EXPECT_THROW(parse_response("PRED 2.75 abc"), ProtocolError);
}

TEST(Wire, ErrorWithoutCodeTokenFallsBackToInternal) {
  // A peer that omits the code token still decodes; the prose survives.
  const Response parsed = parse_response("ERR something broke badly");
  const auto* out = std::get_if<ErrorResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->code, WireErrorCode::kInternal);
  EXPECT_EQ(out->message, "something broke badly");
}

TEST(Wire, ErrorRetryAfterRoundTrips) {
  // Protocol v5: ERR carries a retry-after-ms backoff hint.
  const Response parsed = parse_response(serialize_response(
      ErrorResponse{WireErrorCode::kOverloaded, "shed: worker saturated", 250}));
  const auto* out = std::get_if<ErrorResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->code, WireErrorCode::kOverloaded);
  EXPECT_EQ(out->retry_after_ms, 250u);
  EXPECT_EQ(out->message, "shed: worker saturated");

  // Zero (no hint) survives too.
  const Response zero = parse_response(serialize_response(
      ErrorResponse{WireErrorCode::kBadRequest, "bad verb", 0}));
  const auto* zout = std::get_if<ErrorResponse>(&zero);
  ASSERT_NE(zout, nullptr);
  EXPECT_EQ(zout->retry_after_ms, 0u);
  EXPECT_EQ(zout->message, "bad verb");
}

TEST(Wire, ErrorWithoutRetryAfterTokenParsesAsNoHint) {
  // A v4 peer sends "ERR <code> <message>" with no retry-after field; the
  // message must not lose its first word to the hint parser.
  const Response parsed = parse_response("ERR OVERLOADED try again later");
  const auto* out = std::get_if<ErrorResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->code, WireErrorCode::kOverloaded);
  EXPECT_EQ(out->retry_after_ms, 0u);
  EXPECT_EQ(out->message, "try again later");
}

TEST(Wire, ErrorRetryAfterDisambiguatesNumericMessages) {
  // v5 grammar: the token right after the code is the hint only when it is
  // all digits and plausibly a duration. A message that *starts* with a
  // short number is consumed as the hint (the unavoidable v4 ambiguity the
  // protocol accepts); an over-long digit run stays prose.
  {
    const Response parsed = parse_response("ERR SHUTTING_DOWN 500 draining");
    const auto* out = std::get_if<ErrorResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->code, WireErrorCode::kShuttingDown);
    EXPECT_EQ(out->retry_after_ms, 500u);
    EXPECT_EQ(out->message, "draining");
  }
  {
    // Eleven digits cannot be a retry hint: it stays in the message.
    const Response parsed = parse_response("ERR INTERNAL 12345678901 rows");
    const auto* out = std::get_if<ErrorResponse>(&parsed);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->retry_after_ms, 0u);
    EXPECT_EQ(out->message, "12345678901 rows");
  }
}

TEST(Wire, EmptyClusterLabelUsesPlaceholder) {
  const SessionResponse in{1, 2.0, false, ""};
  const Response parsed = parse_response(serialize_response(in));
  const auto* out = std::get_if<SessionResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->cluster_label.empty());
}

TEST(Wire, ModelRequestRoundTrip) {
  const ModelRequest request{sample_features(), 7.25};
  const Request parsed = parse_request(serialize_request(request));
  const auto* out = std::get_if<ModelRequest>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->features, sample_features());
  EXPECT_DOUBLE_EQ(out->start_hour, 7.25);
}

TEST(Wire, ModelResponseRoundTrip) {
  ModelResponse in;
  in.initial_mbps = 2.75;
  in.used_global_model = true;
  in.serialized_hmm = "cs2p-hmm-v1 1\ninitial 1\nrow 1\nstate 2.5 0.3\n";
  const Response parsed = parse_response(serialize_response(in));
  const auto* out = std::get_if<ModelResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_DOUBLE_EQ(out->initial_mbps, 2.75);
  EXPECT_TRUE(out->used_global_model);
  EXPECT_EQ(out->serialized_hmm, in.serialized_hmm);
}

TEST(Wire, ModelResponseWithoutBodyThrows) {
  EXPECT_THROW(parse_response("MODEL 1.0 0"), std::runtime_error);
  EXPECT_THROW(parse_response("MODEL 1.0\nbody"), std::runtime_error);
}

TEST(Wire, StatsRequestRoundTrip) {
  const Request parsed = parse_request(serialize_request(StatsRequest{}));
  EXPECT_NE(std::get_if<StatsRequest>(&parsed), nullptr);
  // STATS takes no arguments; trailing tokens are a malformed request.
  EXPECT_THROW(parse_request("STATS now"), ProtocolError);
}

TEST(Wire, StatsResponseRoundTrip) {
  StatsResponse in;
  in.exposition_version = 1;
  in.exposition =
      "# cs2p_metrics_version 1\n"
      "cs2p_server_requests_total 42\n"
      "cs2p_server_request_seconds_bucket{le=\"+Inf\"} 42\n";
  const Response parsed = parse_response(serialize_response(in));
  const auto* out = std::get_if<StatsResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->exposition_version, 1);
  EXPECT_EQ(out->exposition, in.exposition);
}

TEST(Wire, StatsResponseEmptyBodyRoundTrips) {
  // An empty exposition (freshly built registry) is legal, unlike MODEL
  // whose body is mandatory.
  StatsResponse in;
  in.exposition_version = 1;
  const Response parsed = parse_response(serialize_response(in));
  const auto* out = std::get_if<StatsResponse>(&parsed);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->exposition.empty());
}

TEST(Wire, StatsResponseWithoutVersionThrows) {
  EXPECT_THROW(parse_response("STATS\nbody"), std::runtime_error);
  EXPECT_THROW(parse_response("STATS x\nbody"), std::runtime_error);
}

TEST(Wire, MalformedRequestsThrow) {
  EXPECT_THROW(parse_request(""), std::runtime_error);
  EXPECT_THROW(parse_request("NONSENSE 1 2"), std::runtime_error);
  EXPECT_THROW(parse_request("HELLO too few"), std::runtime_error);
  EXPECT_THROW(parse_request("OBSERVE 1"), std::runtime_error);
  EXPECT_THROW(parse_request("OBSERVE x 2.0"), std::runtime_error);
  EXPECT_THROW(parse_request("PREDICT 1 x"), std::runtime_error);
  EXPECT_THROW(parse_request("BYE"), std::runtime_error);
  EXPECT_THROW(parse_request("MODEL just one"), std::runtime_error);
}

TEST(Wire, MalformedResponsesThrow) {
  EXPECT_THROW(parse_response(""), std::runtime_error);
  EXPECT_THROW(parse_response("WHAT 1"), std::runtime_error);
  EXPECT_THROW(parse_response("PRED"), std::runtime_error);
  EXPECT_THROW(parse_response("SESSION 1 2.0 1"), std::runtime_error);
}

TEST(Wire, HelloRejectsWhitespaceFeatureValues) {
  HelloRequest hello{sample_features(), 1.0};
  hello.features.city = "two words";
  EXPECT_THROW(serialize_request(hello), std::runtime_error);
  hello.features.city = "";
  EXPECT_THROW(serialize_request(hello), std::runtime_error);
}

TEST(Wire, FuzzedPayloadsThrowButNeverCrash) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::string payload;
    const std::size_t length = rng.uniform_index(40);
    for (std::size_t c = 0; c < length; ++c)
      payload.push_back(static_cast<char>(rng.uniform_index(96) + 32));
    try {
      (void)parse_request(payload);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)parse_response(payload);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(Wire, FrameRoundTripOverLoopback) {
  auto [listener, port] = listen_loopback(0);
  std::thread server([&listener] {
    FdHandle conn = accept_connection(listener);
    ASSERT_TRUE(conn.valid());
    const auto frame = recv_frame(conn);
    ASSERT_TRUE(frame.has_value());
    send_frame(conn, "echo:" + *frame);
    // Client closes; next recv sees clean EOF.
    EXPECT_FALSE(recv_frame(conn).has_value());
  });

  {
    FdHandle client = connect_loopback(port);
    send_frame(client, "hello world");
    const auto reply = recv_frame(client);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, "echo:hello world");
  }
  server.join();
}

TEST(Wire, EmptyFrameAllowed) {
  auto [listener, port] = listen_loopback(0);
  std::thread server([&listener] {
    FdHandle conn = accept_connection(listener);
    const auto frame = recv_frame(conn);
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->empty());
    send_frame(conn, "");
  });
  FdHandle client = connect_loopback(port);
  send_frame(client, "");
  const auto reply = recv_frame(client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->empty());
  server.join();
}

TEST(Wire, OversizedFrameRejected) {
  const std::string too_big(kMaxFrameBytes + 1, 'x');
  auto [listener, port] = listen_loopback(0);
  FdHandle client = connect_loopback(port);
  EXPECT_THROW(send_frame(client, too_big), ProtocolError);
}

// -- Wire-protocol hardening: truncated and corrupted frames must produce
// typed errors, never crashes or hangs -------------------------------------

/// Connects a raw peer, sends `raw` bytes verbatim, closes. Returns the
/// accepted server-side connection for recv_frame to chew on.
FdHandle raw_peer_sends(const FdHandle& listener, std::uint16_t port,
                        std::span<const std::byte> raw) {
  FdHandle client = connect_loopback(port);
  FdHandle conn = accept_connection(listener);
  if (!raw.empty()) send_all(client, raw);
  // client handle destructs here -> EOF after the raw bytes
  return conn;
}

TEST(WireHardening, TruncatedHeaderThrows) {
  auto [listener, port] = listen_loopback(0);
  const std::byte partial[2] = {std::byte{kProtocolVersion}, std::byte{0}};
  FdHandle conn = raw_peer_sends(listener, port, partial);
  EXPECT_THROW(recv_frame(conn), std::runtime_error);  // EOF mid-header
}

TEST(WireHardening, BadVersionByteRejected) {
  auto [listener, port] = listen_loopback(0);
  const std::byte frame[9] = {std::byte{7},   std::byte{0},   std::byte{0},
                              std::byte{5},   std::byte{'h'}, std::byte{'e'},
                              std::byte{'l'}, std::byte{'l'}, std::byte{'o'}};
  FdHandle conn = raw_peer_sends(listener, port, frame);
  EXPECT_THROW(recv_frame(conn), ProtocolError);
}

TEST(WireHardening, OldProtocolVersionsRejectedAtFrameHeader) {
  // A v1, v2 or v3 client (pre-SYNC protocol) must be refused before any
  // verb parsing: the frame header's version byte is the compatibility gate.
  for (const std::uint8_t old_version :
       {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{3}}) {
    auto [listener, port] = listen_loopback(0);
    const std::byte frame[9] = {std::byte{old_version}, std::byte{0},
                                std::byte{0},   std::byte{5},   std::byte{'h'},
                                std::byte{'e'}, std::byte{'l'}, std::byte{'l'},
                                std::byte{'o'}};
    FdHandle conn = raw_peer_sends(listener, port, frame);
    EXPECT_THROW(recv_frame(conn), ProtocolError);
  }
}

TEST(WireHardening, OversizedLengthFieldRejected) {
  auto [listener, port] = listen_loopback(0);
  const std::byte header[4] = {std::byte{kProtocolVersion}, std::byte{0xff},
                               std::byte{0xff}, std::byte{0xff}};
  FdHandle conn = raw_peer_sends(listener, port, header);
  EXPECT_THROW(recv_frame(conn), ProtocolError);
}

TEST(WireHardening, TruncatedPayloadThrows) {
  auto [listener, port] = listen_loopback(0);
  // Header promises 10 bytes, only 3 arrive before EOF.
  const std::byte frame[7] = {std::byte{kProtocolVersion}, std::byte{0},
                              std::byte{0},   std::byte{10},
                              std::byte{'a'}, std::byte{'b'}, std::byte{'c'}};
  FdHandle conn = raw_peer_sends(listener, port, frame);
  EXPECT_THROW(recv_frame(conn), std::runtime_error);
}

TEST(WireHardening, CorruptedPayloadsParseOrThrowTyped) {
  // Take every valid message shape, flip bytes at random, and require the
  // decoder to either succeed or raise ProtocolError — nothing else.
  const std::vector<std::string> seeds = {
      serialize_request(HelloRequest{sample_features(), 12.5}),
      serialize_request(ObserveRequest{42, 3.5}),
      serialize_request(PredictRequest{42, 4}),
      serialize_request(ByeRequest{42}),
      serialize_request(ModelRequest{sample_features(), 3.0}),
      serialize_response(SessionResponse{7, 2.0, false, "label"}),
      serialize_response(PredictionResponse{1.25}),
      serialize_response(OkResponse{}),
      serialize_response(ErrorResponse{WireErrorCode::kOverloaded, "busy"}),
  };
  Rng rng(2024);
  for (int round = 0; round < 300; ++round) {
    for (const std::string& seed : seeds) {
      std::string mutated = seed;
      const std::size_t flips = 1 + rng.uniform_index(3);
      for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
        const std::size_t at = rng.uniform_index(mutated.size());
        mutated[at] = static_cast<char>(rng.uniform_index(256));
      }
      try {
        (void)parse_request(mutated);
      } catch (const ProtocolError&) {
      }
      try {
        (void)parse_response(mutated);
      } catch (const ProtocolError&) {
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace cs2p
