// Tests for the scaled forward-backward recursion, validated against
// brute-force path enumeration.

#include "hmm/forward_backward.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hmm_test_util.h"

namespace cs2p {
namespace {

using testing_support::brute_force_likelihood;
using testing_support::three_state_model;
using testing_support::two_state_model;

TEST(Forward, LikelihoodMatchesBruteForceTwoState) {
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.1, 0.9, 4.8, 5.2};
  const double brute = brute_force_likelihood(model, obs);
  EXPECT_NEAR(log_likelihood(model, obs), std::log(brute), 1e-9);
}

TEST(Forward, LikelihoodMatchesBruteForceThreeState) {
  const GaussianHmm model = three_state_model();
  const std::vector<double> obs = {1.0, 2.4, 2.6, 6.1, 5.5};
  const double brute = brute_force_likelihood(model, obs);
  EXPECT_NEAR(log_likelihood(model, obs), std::log(brute), 1e-9);
}

TEST(Forward, SingleObservation) {
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.0};
  EXPECT_NEAR(log_likelihood(model, obs),
              std::log(brute_force_likelihood(model, obs)), 1e-9);
}

TEST(Forward, AlphaRowsAreDistributions) {
  const GaussianHmm model = three_state_model();
  const std::vector<double> obs = {1.0, 1.2, 6.0, 2.4};
  const ForwardResult fwd = forward(model, obs);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(fwd.alpha(t, i), 0.0);
      sum += fwd.alpha(t, i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Forward, EmptySequenceThrows) {
  EXPECT_THROW(forward(two_state_model(), std::vector<double>{}),
               std::invalid_argument);
}

TEST(Forward, NoUnderflowOnLongSequence) {
  const GaussianHmm model = two_state_model();
  std::vector<double> obs(2000, 1.0);
  const double ll = log_likelihood(model, obs);
  EXPECT_TRUE(std::isfinite(ll));
}

TEST(Forward, ImpossibleObservationStaysFinite) {
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.0, 1e9, 1.0};
  const double ll = log_likelihood(model, obs);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_LT(ll, -100.0);
}

TEST(Backward, ScaleLengthMismatchThrows) {
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.0, 2.0};
  const std::vector<double> bad_scale = {1.0};
  EXPECT_THROW(backward(model, obs, bad_scale), std::invalid_argument);
}

TEST(Posterior, MarginalsSumToOne) {
  const GaussianHmm model = three_state_model();
  const std::vector<double> obs = {1.0, 2.5, 2.4, 6.2, 1.1};
  const Matrix gamma = posterior_marginals(model, obs);
  ASSERT_EQ(gamma.rows(), obs.size());
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(gamma(t, i), -1e-15);
      sum += gamma(t, i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Posterior, ClearObservationsPinTheState) {
  const GaussianHmm model = two_state_model();
  // Observations sit exactly on state means: posteriors should be decisive.
  const std::vector<double> obs = {1.0, 1.0, 5.0, 5.0};
  const Matrix gamma = posterior_marginals(model, obs);
  EXPECT_GT(gamma(0, 0), 0.99);
  EXPECT_GT(gamma(3, 1), 0.99);
}

TEST(Posterior, MarginalsMatchBruteForce) {
  // gamma(t, i) = P(X_t = i | obs) computed by enumerating paths.
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.2, 4.5, 4.9};
  const Matrix gamma = posterior_marginals(model, obs);

  const std::size_t n = model.num_states();
  const double total = brute_force_likelihood(model, obs);
  for (std::size_t t_check = 0; t_check < obs.size(); ++t_check) {
    for (std::size_t state = 0; state < n; ++state) {
      // Sum over paths with X_{t_check} = state.
      std::vector<std::size_t> path(obs.size(), 0);
      double mass = 0.0;
      while (true) {
        if (path[t_check] == state) {
          double p = model.initial[path[0]] *
                     gaussian_pdf(obs[0], model.states[path[0]].mean,
                                  model.states[path[0]].sigma);
          for (std::size_t t = 1; t < obs.size(); ++t)
            p *= model.transition(path[t - 1], path[t]) *
                 gaussian_pdf(obs[t], model.states[path[t]].mean,
                              model.states[path[t]].sigma);
          mass += p;
        }
        std::size_t digit = 0;
        while (digit < obs.size() && ++path[digit] == n) {
          path[digit] = 0;
          ++digit;
        }
        if (digit == obs.size()) break;
      }
      EXPECT_NEAR(gamma(t_check, state), mass / total, 1e-9)
          << "t=" << t_check << " state=" << state;
    }
  }
}

}  // namespace
}  // namespace cs2p
