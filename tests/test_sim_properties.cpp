// Property suite: simulator + controller invariants that must hold for any
// trace and any controller (parameterised sweep over seeds x controllers).

#include <gtest/gtest.h>

#include <memory>

#include "abr/controllers.h"
#include "abr/festive.h"
#include "abr/mpc.h"
#include "abr/offline_optimal.h"
#include "predictors/oracle.h"
#include "sim/player.h"
#include "util/rng.h"

namespace cs2p {
namespace {

enum class ControllerKind { kFixed, kRate, kBuffer, kFestive, kMpc };

struct Combo {
  std::uint64_t seed;
  ControllerKind kind;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const char* names[] = {"Fixed", "Rate", "Buffer", "Festive", "Mpc"};
  return std::string(names[static_cast<int>(info.param.kind)]) + "_seed" +
         std::to_string(info.param.seed);
}

std::unique_ptr<AbrController> make_controller(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kFixed: return std::make_unique<FixedBitrateController>(2);
    case ControllerKind::kRate: return std::make_unique<RateBasedController>();
    case ControllerKind::kBuffer: return std::make_unique<BufferBasedController>();
    case ControllerKind::kFestive: return std::make_unique<FestiveController>();
    case ControllerKind::kMpc: return std::make_unique<MpcController>();
  }
  return nullptr;
}

class SimInvariants : public ::testing::TestWithParam<Combo> {};

TEST_P(SimInvariants, PlaybackIsWellFormed) {
  const auto [seed, kind] = GetParam();
  Rng rng(seed);
  VideoSpec video;
  video.num_chunks = 25;

  // Random but playable trace: levels 0.5-6 Mbps with occasional dips.
  std::vector<double> trace_values;
  double level = rng.uniform(1.0, 4.0);
  for (std::size_t t = 0; t < 30; ++t) {
    if (rng.bernoulli(0.1)) level = rng.uniform(0.5, 6.0);
    trace_values.push_back(level * rng.uniform(0.7, 1.3));
  }
  const ThroughputTrace trace(trace_values);

  // MPC and RB need a predictor; give them the oracle.
  const OracleModel oracle_model;
  SessionContext context;
  context.oracle_series = &trace_values;
  std::unique_ptr<SessionPredictor> predictor;
  if (kind == ControllerKind::kMpc || kind == ControllerKind::kRate)
    predictor = oracle_model.make_session(context);

  const auto controller = make_controller(kind);
  const PlaybackResult result =
      simulate_playback(video, trace, *controller, predictor.get());

  // Invariant 1: exactly one record per chunk, all fields sane.
  ASSERT_EQ(result.chunks.size(), video.num_chunks);
  EXPECT_GT(result.startup_delay_seconds, 0.0);
  for (std::size_t k = 0; k < result.chunks.size(); ++k) {
    const auto& chunk = result.chunks[k];
    EXPECT_GE(chunk.rebuffer_seconds, 0.0);
    EXPECT_GT(chunk.download_seconds, 0.0);
    EXPECT_DOUBLE_EQ(chunk.actual_throughput_mbps, trace.at(k));
    bool on_ladder = false;
    for (double rung : video.bitrates_kbps)
      on_ladder |= chunk.bitrate_kbps == rung;
    EXPECT_TRUE(on_ladder) << "chunk " << k << " bitrate off ladder";
  }
  // Invariant 2: the first chunk never rebuffers (its wait is startup).
  EXPECT_DOUBLE_EQ(result.chunks.front().rebuffer_seconds, 0.0);

  // Invariant 3: the offline optimum dominates the realized QoE
  // (up to buffer-quantisation slack).
  const QoeBreakdown qoe = compute_qoe(result);
  const auto optimal = offline_optimal_qoe(video, trace);
  EXPECT_GE(optimal.qoe + 5.0, qoe.total)
      << "controller beat the offline optimum";

  // Invariant 4: QoE accounting is internally consistent.
  double rebuffer_sum = 0.0;
  for (const auto& chunk : result.chunks) rebuffer_sum += chunk.rebuffer_seconds;
  EXPECT_NEAR(qoe.rebuffer_seconds, rebuffer_sum, 1e-9);
  EXPECT_GE(qoe.good_ratio, 0.0);
  EXPECT_LE(qoe.good_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Values(Combo{1, ControllerKind::kFixed},
                      Combo{1, ControllerKind::kRate},
                      Combo{1, ControllerKind::kBuffer},
                      Combo{1, ControllerKind::kFestive},
                      Combo{1, ControllerKind::kMpc},
                      Combo{7, ControllerKind::kFixed},
                      Combo{7, ControllerKind::kRate},
                      Combo{7, ControllerKind::kBuffer},
                      Combo{7, ControllerKind::kFestive},
                      Combo{7, ControllerKind::kMpc},
                      Combo{42, ControllerKind::kBuffer},
                      Combo{42, ControllerKind::kMpc},
                      Combo{2016, ControllerKind::kFestive},
                      Combo{2016, ControllerKind::kMpc}),
    combo_name);

}  // namespace
}  // namespace cs2p
