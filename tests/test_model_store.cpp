// Tests for the crash-safe model store (core/model_store.h): snapshot
// round-trip equality, torn-write rejection at every byte offset, bit-flip
// rejection, fingerprint mismatches, and the load_or_train fallback.

#include "core/model_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dataset/synthetic.h"
#include "util/rng.h"

namespace cs2p {
namespace {

SyntheticConfig store_world() {
  SyntheticConfig config;
  config.num_isps = 3;
  config.num_provinces = 3;
  config.cities_per_province = 2;
  config.num_servers = 4;
  config.prefixes_per_isp_city = 1;
  config.num_sessions = 1500;
  config.seed = 77;
  return config;
}

Cs2pConfig fast_config() {
  Cs2pConfig config;
  config.hmm.num_states = 3;
  config.hmm.max_iterations = 10;
  config.selector.min_cluster_size = 10;
  config.max_sequences_per_cluster = 20;
  config.max_global_sequences = 120;
  return config;
}

/// Tiny hand-built dataset so the torn-write sweep (one restore attempt per
/// byte offset) stays fast: two throughput levels determined by City.
Dataset tiny_dataset(std::size_t per_city = 8) {
  Dataset train;
  Rng rng(5);
  std::int64_t id = 0;
  for (const auto& [city, level] :
       std::vector<std::pair<std::string, double>>{{"low-city", 1.0},
                                                   {"high-city", 8.0}}) {
    for (std::size_t i = 0; i < per_city; ++i) {
      Session s;
      s.id = id++;
      s.features = {"ISP0", "AS0", "P0", city, "S0", "Pfx-" + city};
      s.start_hour = rng.uniform(0.0, 24.0);
      for (int t = 0; t < 6; ++t)
        s.throughput_mbps.push_back(level * (1.0 + rng.uniform(-0.1, 0.1)));
      train.add(s);
    }
  }
  return train;
}

Cs2pConfig tiny_config() {
  Cs2pConfig config;
  config.hmm.num_states = 2;
  config.hmm.max_iterations = 5;
  config.selector.min_cluster_size = 4;
  config.max_sequences_per_cluster = 8;
  config.max_global_sequences = 16;
  return config;
}

SnapshotErrorCode code_of(const std::string& bytes, Dataset training,
                          const Cs2pConfig& config) {
  try {
    (void)restore_engine_from_bytes(bytes, std::move(training), config);
  } catch (const SnapshotError& e) {
    return e.code();
  }
  ADD_FAILURE() << "restore unexpectedly succeeded";
  return SnapshotErrorCode::kIo;
}

TEST(ModelStore, RoundTripProducesBitIdenticalSessionModels) {
  const Dataset dataset = SyntheticWorld(store_world()).generate();
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pConfig config = fast_config();

  const Cs2pEngine trained(train, config);
  const std::size_t warmed = trained.warm_up();
  ASSERT_GT(warmed, 0u);

  const std::string bytes = serialize_engine(trained);
  const auto restored = restore_engine_from_bytes(bytes, train, config);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->stats().clusters_restored, warmed);

  // Every test session must resolve to an identical per-session model:
  // same HMM parameters bit-for-bit (via the exact-precision text round
  // trip), same initial prediction, same global/cluster routing.
  std::size_t compared = 0;
  for (const auto& s : test.sessions()) {
    const SessionModelRef a = trained.session_model(s.features, s.start_hour);
    const SessionModelRef b = restored->session_model(s.features, s.start_hour);
    ASSERT_NE(a.hmm, nullptr);
    ASSERT_NE(b.hmm, nullptr);
    EXPECT_EQ(serialize_hmm(*a.hmm), serialize_hmm(*b.hmm));
    EXPECT_EQ(a.initial_prediction, b.initial_prediction);  // bit identical
    EXPECT_EQ(a.used_global_model, b.used_global_model);
    EXPECT_EQ(a.cluster_size, b.cluster_size);
    ++compared;
  }
  EXPECT_GT(compared, 100u);
  // The restore itself ran no EM. Probing test sessions may lazily train
  // clusters the warm-up never saw — but then both engines train the same
  // ones, so the restored engine's EM count is exactly the trained engine's
  // count beyond its warm-up.
  EXPECT_EQ(restored->stats().clusters_trained,
            trained.stats().clusters_trained - warmed);
}

TEST(ModelStore, SaveRestoreThroughFileAndAtomicity) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);
  engine.warm_up();

  const std::string path = ::testing::TempDir() + "/cs2p_store_file.snapshot";
  save_snapshot(path, engine);
  const auto restored = restore_engine(path, train, config);
  EXPECT_EQ(serialize_hmm(restored->global_hmm()), serialize_hmm(engine.global_hmm()));
  EXPECT_EQ(restored->global_initial(), engine.global_initial());

  // The temp file of the atomic write protocol must not linger.
  const std::string tmp_prefix = path + ".tmp.";
  FILE* f = std::fopen((tmp_prefix + "0").c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f) std::fclose(f);

  // Overwrite-in-place (the retrain path) must also round-trip.
  save_snapshot(path, engine);
  EXPECT_NE(restore_engine(path, train, config), nullptr);
  std::remove(path.c_str());
}

TEST(ModelStore, TruncationAtEveryByteOffsetIsRejected) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);
  engine.warm_up();

  const std::string bytes = serialize_engine(engine);
  ASSERT_NE(restore_engine_from_bytes(bytes, train, config), nullptr)
      << "untruncated snapshot must restore";

  // A torn write can stop after any byte; every prefix must be rejected
  // with a typed error — never UB, never a silently wrong engine.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      (void)restore_engine_from_bytes(bytes.substr(0, len), train, config);
      FAIL() << "truncation to " << len << " bytes was accepted";
    } catch (const SnapshotError&) {
      // expected: typed rejection -> caller falls back to fresh training
    }
  }
}

TEST(ModelStore, BitFlipsAreRejected) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);
  engine.warm_up();

  const std::string bytes = serialize_engine(engine);
  for (std::size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    EXPECT_THROW(
        (void)restore_engine_from_bytes(corrupted, train, config),
        SnapshotError)
        << "flip at offset " << pos << " was accepted";
  }
}

TEST(ModelStore, PayloadCorruptionIsChecksumMismatch) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);

  std::string bytes = serialize_engine(engine);
  // Flip one digit deep inside the payload (after the header line).
  const std::size_t payload_start = bytes.find('\n') + 1;
  const std::size_t pos = payload_start + bytes.size() / 2 - payload_start / 2;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x02);
  EXPECT_EQ(code_of(bytes, train, config), SnapshotErrorCode::kChecksumMismatch);
}

TEST(ModelStore, VersionAndMagicMismatch) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);

  std::string bytes = serialize_engine(engine);
  std::string future = bytes;
  future.replace(0, 16, "cs2p-snapshot-v9");
  EXPECT_EQ(code_of(future, train, config), SnapshotErrorCode::kVersionMismatch);

  std::string garbage = "definitely not a snapshot\n" + bytes;
  EXPECT_EQ(code_of(garbage, train, config), SnapshotErrorCode::kBadMagic);
}

TEST(ModelStore, ConfigAndDatasetMismatch) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const Cs2pEngine engine(train, config);
  const std::string bytes = serialize_engine(engine);

  Cs2pConfig other = config;
  other.hmm.num_states = 4;
  EXPECT_EQ(code_of(bytes, train, other), SnapshotErrorCode::kConfigMismatch);

  Dataset fewer = tiny_dataset(7);
  EXPECT_EQ(code_of(bytes, fewer, config), SnapshotErrorCode::kDatasetMismatch);

  // Same shape, different samples: fingerprint still catches it.
  Dataset tweaked = tiny_dataset();
  tweaked.sessions()[0].throughput_mbps[0] += 0.25;
  EXPECT_EQ(code_of(bytes, tweaked, config), SnapshotErrorCode::kDatasetMismatch);
}

TEST(ModelStore, ConfigFingerprintExcludesTrainerHook) {
  Cs2pConfig a = tiny_config();
  Cs2pConfig b = tiny_config();
  b.trainer = [](const std::vector<std::vector<double>>& seqs,
                 const BaumWelchConfig& cfg) { return train_hmm(seqs, cfg); };
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));

  b = tiny_config();
  b.hmm.seed += 1;
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
}

TEST(ModelStore, LoadOrTrainFallsBackAndPersists) {
  const Dataset train = tiny_dataset();
  const Cs2pConfig config = tiny_config();
  const std::string path = ::testing::TempDir() + "/cs2p_load_or_train.snapshot";
  std::remove(path.c_str());

  std::string status;
  auto first = load_or_train(path, train, config, /*warm_up=*/true, &status);
  ASSERT_NE(first, nullptr);
  EXPECT_NE(status.find("training fresh"), std::string::npos) << status;
  EXPECT_NE(status.find("snapshot saved"), std::string::npos) << status;

  auto second = load_or_train(path, train, config, /*warm_up=*/true, &status);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(status.find("restored engine"), std::string::npos) << status;
  EXPECT_EQ(serialize_hmm(second->global_hmm()), serialize_hmm(first->global_hmm()));

  // Corrupt the file: the next load must fall back to training and heal the
  // store in place.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputs("XX", f);
    std::fclose(f);
  }
  auto third = load_or_train(path, train, config, /*warm_up=*/true, &status);
  ASSERT_NE(third, nullptr);
  EXPECT_NE(status.find("snapshot unusable"), std::string::npos) << status;

  auto fourth = load_or_train(path, train, config, /*warm_up=*/true, &status);
  ASSERT_NE(fourth, nullptr);
  EXPECT_NE(status.find("restored engine"), std::string::npos) << status;
  std::remove(path.c_str());
}

TEST(ModelStore, EmptyPathTrainsWithoutPersistence) {
  std::string status;
  auto engine = load_or_train("", tiny_dataset(), tiny_config(),
                              /*warm_up=*/false, &status);
  ASSERT_NE(engine, nullptr);
  EXPECT_NE(status.find("no snapshot path"), std::string::npos) << status;
}

}  // namespace
}  // namespace cs2p
