// Continuous-training soak (DESIGN.md §15), run under TSan in CI
// (ci.yml trainer-soak job): 64 client sessions stream through a serving
// process whose world shifts mid-soak while the background trainer ingests
// every completed session, retrains shifted clusters and hot-swaps accepted
// generations into the live server. Acceptance: zero dropped sessions, zero
// torn swaps (every reply finite on a coherent model), bounded rollbacks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/model_store.h"
#include "core/trainer.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rng.h"

namespace cs2p {
namespace {

SessionFeatures city_features(const std::string& city) {
  return {"ISP0", "AS0", "P0", city, "S0", "Pfx-" + city};
}

/// Tiny fixed-hour world (2 clusters, 2-state HMMs) so EM passes stay cheap
/// enough for a TSan interleaving soak.
Dataset soak_dataset() {
  Dataset train;
  Rng rng(29);
  std::int64_t id = 0;
  for (const auto& [city, level] :
       std::vector<std::pair<std::string, double>>{{"low-city", 2.0},
                                                   {"high-city", 6.0}}) {
    for (int i = 0; i < 10; ++i) {
      Session s;
      s.id = id++;
      s.features = city_features(city);
      s.start_hour = 12.0;
      for (int t = 0; t < 8; ++t)
        s.throughput_mbps.push_back(level * (1.0 + rng.uniform(-0.15, 0.15)));
      train.add(s);
    }
  }
  return train;
}

Cs2pConfig soak_config() {
  Cs2pConfig config;
  config.hmm.num_states = 2;
  config.hmm.max_iterations = 6;
  config.selector.min_cluster_size = 4;
  config.max_sequences_per_cluster = 16;
  config.max_global_sequences = 32;
  return config;
}

TEST(TrainerSoak, WorldShiftUnderContinuousTrainingDropsNothing) {
  auto engine = std::make_shared<Cs2pEngine>(soak_dataset(), soak_config());
  engine->warm_up();

  TrainerConfig trainer_config;
  trainer_config.reservoir_size = 24;
  trainer_config.min_new_sessions = 6;
  trainer_config.holdout_stride = 4;
  trainer_config.canary_margin = 0.01;
  trainer_config.horizon = 2;
  trainer_config.train_interval_ms = 20;
  trainer_config.probation_ms = 50;
  ContinuousTrainer trainer(engine, trainer_config);

  ServerConfig server_config;
  server_config.on_session_complete = [&trainer](CompletedSession&& done) {
    trainer.ingest(done.features, done.start_hour, done.observations);
  };

  PredictionServer server(std::make_shared<Cs2pPredictorModel>(engine),
                          server_config, 0);
  std::atomic<std::uint64_t> publishes{0};
  trainer.set_publish([&](const std::shared_ptr<const Cs2pEngine>& fresh,
                          const std::string& bytes) {
    if (bytes.empty()) return false;  // a torn snapshot must never publish
    server.swap_model(std::make_shared<Cs2pPredictorModel>(fresh));
    publishes.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  trainer.start();

  constexpr int kClients = 8;
  constexpr int kSessionsPerClient = 8;  // 64 sessions through the shift
  constexpr int kEpochs = 10;
  std::atomic<int> bad_replies{0};
  std::atomic<std::uint64_t> reestablished{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        PredictionClient client(server.port());
        Rng rng(100 + c);
        for (int i = 0; i < kSessionsPerClient; ++i) {
          const std::string city = (c + i) % 2 == 0 ? "low-city" : "high-city";
          // World shift halfway through the soak: the served throughput
          // regime jumps ~6x, so completed sessions mark clusters dirty and
          // the trainer keeps retraining + swapping under this live load.
          const double level = i < kSessionsPerClient / 2
                                   ? (city == "low-city" ? 2.0 : 6.0)
                                   : (city == "low-city" ? 12.0 : 36.0);
          const auto session = client.hello(city_features(city), 12.0);
          if (!(session.initial_mbps >= 0.0)) ++bad_replies;
          for (int t = 0; t < kEpochs; ++t) {
            const double w = level * (1.0 + rng.uniform(-0.2, 0.2));
            const double forecast = client.observe(session.session_id, w);
            if (!std::isfinite(forecast) || forecast < 0.0) ++bad_replies;
          }
          const double ahead = client.predict(session.session_id, 2);
          if (!std::isfinite(ahead) || ahead < 0.0) ++bad_replies;
          client.bye(session.session_id);
        }
        reestablished.fetch_add(client.sessions_reestablished(),
                                std::memory_order_relaxed);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << " died: " << e.what();
      }
    });
  }
  for (auto& thread : clients) thread.join();

  // Let the trainer drain the tail of completions, then settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  trainer.stop();
  trainer.run_once();

  EXPECT_EQ(bad_replies.load(), 0) << "torn swap or invalid forecast";
  EXPECT_EQ(reestablished.load(), 0u) << "sessions were dropped mid-soak";

  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.sessions_ingested, static_cast<std::uint64_t>(
                                         kClients * kSessionsPerClient))
      << "every completed session must reach the trainer";
  EXPECT_EQ(stats.sessions_dropped, 0u);
  // No guardrail sessions run in this soak, so the drift quorum can never
  // trip: every swap is a canary accept and rollbacks stay bounded at zero.
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.generation, stats.canary_accepts + stats.rollbacks)
      << "lineage must advance exactly once per published swap";
  EXPECT_EQ(publishes.load(), stats.canary_accepts + stats.rollbacks);
  EXPECT_EQ(server.models_swapped(), publishes.load());

  // The soak's purpose: the shifted world actually forced retrains through
  // the canary gate while serving.
  EXPECT_GE(stats.retrains, 1u);
  EXPECT_GE(stats.canary_accepts, 1u);

  server.stop();
}

}  // namespace
}  // namespace cs2p
