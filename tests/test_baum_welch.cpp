// Tests for Baum-Welch EM training (hmm/baum_welch.h).

#include "hmm/baum_welch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "hmm/forward_backward.h"
#include "hmm_test_util.h"

namespace cs2p {
namespace {

using testing_support::sample_sequence;
using testing_support::two_state_model;

TEST(Kmeans1d, RecoversSeparatedCentroids) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian(1.0, 0.05));
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian(5.0, 0.05));
  const auto centroids = kmeans_1d(xs, 2, rng);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_NEAR(centroids[0], 1.0, 0.1);
  EXPECT_NEAR(centroids[1], 5.0, 0.1);
}

TEST(Kmeans1d, CentroidsAreSorted) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const auto centroids = kmeans_1d(xs, 4, rng);
  EXPECT_TRUE(std::is_sorted(centroids.begin(), centroids.end()));
}

TEST(Kmeans1d, MoreClustersThanPointsDuplicates) {
  Rng rng(3);
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const auto centroids = kmeans_1d(xs, 5, rng);
  EXPECT_EQ(centroids.size(), 5u);
  for (double c : centroids) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Kmeans1d, ErrorPaths) {
  Rng rng(4);
  EXPECT_THROW(kmeans_1d({}, 2, rng), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(kmeans_1d(xs, 0, rng), std::invalid_argument);
}

TEST(BaumWelch, RecoverTwoStateParameters) {
  // Generate data from a known model and check EM finds parameters close to
  // the truth (states are sorted by mean, so indices are comparable).
  const GaussianHmm truth = two_state_model();
  Rng rng(42);
  std::vector<std::vector<double>> sequences;
  for (int s = 0; s < 40; ++s) sequences.push_back(sample_sequence(truth, 80, rng));

  BaumWelchConfig config;
  config.num_states = 2;
  config.max_iterations = 80;
  config.min_sigma = 0.01;
  const BaumWelchResult result = train_hmm(sequences, config);

  EXPECT_NEAR(result.model.states[0].mean, 1.0, 0.1);
  EXPECT_NEAR(result.model.states[1].mean, 5.0, 0.25);
  EXPECT_NEAR(result.model.states[0].sigma, 0.1, 0.05);
  EXPECT_NEAR(result.model.transition(0, 0), 0.9, 0.05);
  EXPECT_NEAR(result.model.transition(1, 1), 0.8, 0.07);
}

TEST(BaumWelch, LikelihoodImprovesOverInitialization) {
  const GaussianHmm truth = testing_support::three_state_model();
  Rng rng(7);
  std::vector<std::vector<double>> sequences;
  for (int s = 0; s < 15; ++s) sequences.push_back(sample_sequence(truth, 60, rng));

  BaumWelchConfig one_iter;
  one_iter.num_states = 3;
  one_iter.max_iterations = 1;
  BaumWelchConfig many_iters = one_iter;
  many_iters.max_iterations = 50;

  const double ll_start = train_hmm(sequences, one_iter).final_log_likelihood;
  const double ll_end = train_hmm(sequences, many_iters).final_log_likelihood;
  EXPECT_GT(ll_end, ll_start);
}

TEST(BaumWelch, ResultIsValidStochasticModel) {
  Rng rng(9);
  const GaussianHmm truth = two_state_model();
  std::vector<std::vector<double>> sequences = {sample_sequence(truth, 50, rng),
                                                sample_sequence(truth, 30, rng)};
  BaumWelchConfig config;
  config.num_states = 4;  // over-parameterised on purpose
  const BaumWelchResult result = train_hmm(sequences, config);
  EXPECT_NO_THROW(result.model.validate(1e-6));
  EXPECT_EQ(result.model.num_states(), 4u);
}

TEST(BaumWelch, StatesSortedByMean) {
  Rng rng(11);
  const GaussianHmm truth = testing_support::three_state_model();
  std::vector<std::vector<double>> sequences = {sample_sequence(truth, 200, rng)};
  BaumWelchConfig config;
  config.num_states = 3;
  const auto result = train_hmm(sequences, config);
  for (std::size_t i = 1; i < 3; ++i)
    EXPECT_LE(result.model.states[i - 1].mean, result.model.states[i].mean);
}

TEST(BaumWelch, SigmaFloorHolds) {
  // Constant observations would collapse variance to zero without a floor.
  std::vector<std::vector<double>> sequences = {
      std::vector<double>(50, 2.0), std::vector<double>(50, 2.0)};
  BaumWelchConfig config;
  config.num_states = 2;
  config.min_sigma = 0.05;
  const auto result = train_hmm(sequences, config);
  for (const auto& state : result.model.states)
    EXPECT_GE(state.sigma, 0.05 - 1e-12);
}

TEST(BaumWelch, SingleStateModel) {
  std::vector<std::vector<double>> sequences = {{1.0, 1.2, 0.8, 1.1, 0.9}};
  BaumWelchConfig config;
  config.num_states = 1;
  const auto result = train_hmm(sequences, config);
  EXPECT_NEAR(result.model.states[0].mean, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(result.model.transition(0, 0), 1.0);
}

TEST(BaumWelch, ShortAndEmptySequencesHandled) {
  std::vector<std::vector<double>> sequences = {{1.0}, {}, {2.0, 2.1, 1.9}};
  BaumWelchConfig config;
  config.num_states = 2;
  EXPECT_NO_THROW(train_hmm(sequences, config));
}

TEST(BaumWelch, ErrorPaths) {
  BaumWelchConfig config;
  config.num_states = 0;
  EXPECT_THROW(train_hmm({{1.0, 2.0}}, config), std::invalid_argument);
  config.num_states = 2;
  EXPECT_THROW(train_hmm({}, config), std::invalid_argument);
  EXPECT_THROW(train_hmm({{}, {}}, config), std::invalid_argument);
}

TEST(BaumWelch, RejectsMisuseAsInvalidArgument) {
  // Caller bugs (bad config) are invalid_argument, distinct from data-driven
  // TrainingError so the engine can quarantine the latter without masking
  // the former.
  BaumWelchConfig config;
  config.num_states = kMaxHmmStates + 1;
  EXPECT_THROW(train_hmm({{1.0, 2.0, 3.0}}, config), std::invalid_argument);

  config = BaumWelchConfig{};
  config.min_sigma = 0.0;
  EXPECT_THROW(train_hmm({{1.0, 2.0, 3.0}}, config), std::invalid_argument);
  config.min_sigma = -1.0;
  EXPECT_THROW(train_hmm({{1.0, 2.0, 3.0}}, config), std::invalid_argument);
  config.min_sigma = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(train_hmm({{1.0, 2.0, 3.0}}, config), std::invalid_argument);

  config = BaumWelchConfig{};
  config.max_iterations = 0;
  EXPECT_THROW(train_hmm({{1.0, 2.0, 3.0}}, config), std::invalid_argument);
}

TEST(BaumWelch, NonFiniteObservationsAreTrainingErrors) {
  BaumWelchConfig config;
  config.num_states = 2;
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(train_hmm({{1.0, bad, 2.0}}, config), TrainingError);
  }
}

TEST(BaumWelch, VarianceFloorSurvivesDegenerateData) {
  // All-identical observations drive every per-state variance to zero; the
  // min_sigma floor must keep the fitted model valid instead of collapsing
  // EM into NaN likelihoods.
  BaumWelchConfig config;
  config.num_states = 2;
  config.max_iterations = 25;
  const std::vector<std::vector<double>> constant(6,
                                                  std::vector<double>(8, 3.0));
  const BaumWelchResult result = train_hmm(constant, config);
  EXPECT_NO_THROW(result.model.validate());
  for (const auto& s : result.model.states) {
    EXPECT_GE(s.sigma, config.min_sigma);
    EXPECT_TRUE(std::isfinite(s.mean));
  }
}

TEST(BaumWelch, DeterministicForFixedSeed) {
  Rng rng(13);
  const GaussianHmm truth = two_state_model();
  std::vector<std::vector<double>> sequences = {sample_sequence(truth, 100, rng)};
  BaumWelchConfig config;
  config.num_states = 2;
  const auto a = train_hmm(sequences, config);
  const auto b = train_hmm(sequences, config);
  EXPECT_DOUBLE_EQ(a.final_log_likelihood, b.final_log_likelihood);
  EXPECT_DOUBLE_EQ(a.model.states[0].mean, b.model.states[0].mean);
}

// Property sweep: training converges and yields valid models across state
// counts (parameterised gtest).
class BaumWelchStateSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaumWelchStateSweep, TrainsValidModel) {
  Rng rng(100 + GetParam());
  const GaussianHmm truth = testing_support::three_state_model();
  std::vector<std::vector<double>> sequences;
  for (int s = 0; s < 10; ++s) sequences.push_back(sample_sequence(truth, 50, rng));
  BaumWelchConfig config;
  config.num_states = GetParam();
  const auto result = train_hmm(sequences, config);
  EXPECT_NO_THROW(result.model.validate(1e-6));
  EXPECT_GT(result.iterations_run, 0);
  // Held-in likelihood should be finite.
  EXPECT_TRUE(std::isfinite(result.final_log_likelihood));
}

INSTANTIATE_TEST_SUITE_P(StateCounts, BaumWelchStateSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

}  // namespace
}  // namespace cs2p
