// Batched HMM inference (DESIGN.md §16): BatchHmmFilter and the engine's
// observe_batch / predict_batch must be numerically indistinguishable from
// the scalar path. The property tests drive random models and random streams
// (including degenerate outliers) through both paths side by side and hold
// every observable — prediction, belief, log-likelihood, degenerate-update
// count — to 1e-9. Observations and beliefs agree bit-for-bit (shared
// expression tree, hmm/kernel.h); batched predictions extract from the
// unnormalized projected mass and may differ from the scalar result by a
// couple of ulp on the posterior-mean rule.

#include "hmm/batch_filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "hmm/kernel.h"
#include "hmm/online_filter.h"
#include "predictors/guarded_session.h"
#include "predictors/hmm_session.h"
#include "util/rng.h"

namespace cs2p {
namespace {

constexpr double kTol = 1e-9;

/// A random valid model: stochastic rows by normalizing uniform draws,
/// well-spread means, sigmas well above the kernel floor.
GaussianHmm random_model(Rng& rng, std::size_t n) {
  GaussianHmm model;
  model.initial.resize(n);
  double sum = 0.0;
  for (auto& p : model.initial) sum += (p = rng.uniform(0.05, 1.0));
  for (auto& p : model.initial) p /= sum;
  model.transition = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      row += (model.transition(i, j) = rng.uniform(0.05, 1.0));
    for (std::size_t j = 0; j < n; ++j) model.transition(i, j) /= row;
  }
  model.states.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.states[i].mean = 0.5 + 1.5 * static_cast<double>(i) +
                           rng.uniform(0.0, 1.0);
    model.states[i].sigma = rng.uniform(0.05, 1.0);
  }
  return model;
}

/// A stream sample: usually near a random state mean, occasionally an
/// absurd outlier that zeroes every emission (the degenerate-update path).
double random_sample(Rng& rng, const GaussianHmm& model) {
  if (rng.uniform() < 0.08) return 1e12;
  const auto& s = model.states[rng.uniform_index(model.num_states())];
  return s.mean + s.sigma * rng.gaussian();
}

TEST(BatchFilter, MatchesScalarOnRandomModelsAndStreams) {
  Rng rng(0xba7c4ed5eedULL);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(7);  // 2..8 states
    const std::size_t width = 1 + rng.uniform_index(33);  // 1..33 lanes
    const auto kernel = HmmKernel::create(random_model(rng, n));

    std::vector<OnlineHmmFilter> scalar;
    std::vector<OnlineHmmFilter> batched;
    for (std::size_t b = 0; b < width; ++b) {
      const PredictionRule rule = (b % 2 == 0) ? PredictionRule::kMleState
                                               : PredictionRule::kPosteriorMean;
      scalar.emplace_back(kernel, rule);
      batched.emplace_back(kernel, rule);
    }

    BatchHmmFilter batch;
    std::vector<OnlineHmmFilter*> lanes(width);
    std::vector<const OnlineHmmFilter*> const_lanes(width);
    for (std::size_t b = 0; b < width; ++b) {
      lanes[b] = &batched[b];
      const_lanes[b] = &batched[b];
    }
    std::vector<double> observations(width);
    std::vector<double> predictions(width);

    for (int step = 0; step < 20; ++step) {
      for (std::size_t b = 0; b < width; ++b)
        observations[b] = random_sample(rng, kernel->model());
      for (std::size_t b = 0; b < width; ++b)
        scalar[b].observe(observations[b]);
      batch.observe(*kernel, lanes, observations);

      for (std::size_t b = 0; b < width; ++b) {
        ASSERT_EQ(batched[b].observations(), scalar[b].observations());
        ASSERT_EQ(batched[b].degenerate_updates(),
                  scalar[b].degenerate_updates());
        const double ll_s = scalar[b].last_log_likelihood();
        const double ll_b = batched[b].last_log_likelihood();
        if (std::isfinite(ll_s)) {
          ASSERT_NEAR(ll_b, ll_s, kTol);
        } else {
          ASSERT_EQ(ll_b, ll_s);  // both -inf on a degenerate update
        }
        for (std::size_t x = 0; x < n; ++x)
          ASSERT_NEAR(batched[b].belief()[x], scalar[b].belief()[x], kTol);
      }

      // Horizons across and beyond the precomputed power cache.
      for (const unsigned steps : {1u, 3u, HmmKernel::kMaxCachedPowers + 4}) {
        batch.predict(*kernel, const_lanes, steps, predictions);
        for (std::size_t b = 0; b < width; ++b)
          ASSERT_NEAR(predictions[b], scalar[b].predict(steps), kTol)
              << "trial " << trial << " step " << step << " lane " << b
              << " horizon " << steps;
      }
    }
  }
}

TEST(BatchFilter, PredictRejectsZeroSteps) {
  const auto kernel = HmmKernel::create(
      GaussianHmm{{0.6, 0.4},
                  Matrix{{0.9, 0.1}, {0.2, 0.8}},
                  {{1.0, 0.1}, {5.0, 0.5}}});
  OnlineHmmFilter filter(kernel);
  const OnlineHmmFilter* lanes[] = {&filter};
  double out[1];
  BatchHmmFilter batch;
  EXPECT_THROW(batch.predict(*kernel, lanes, 0, out), std::invalid_argument);
}

/// The engine's batch API over a mixed predictor population: plain HMM
/// sessions, guarded sessions (some tripping their guardrail mid-stream),
/// and cold-start sessions, spread over two distinct kernels. Every item's
/// prediction must match an identically-driven scalar twin.
TEST(BatchFilter, EngineBatchMatchesScalarAcrossPredictorMix) {
  Rng rng(0x5eedf00dULL);
  const auto kernel_a = HmmKernel::create(random_model(rng, 4));
  const auto kernel_b = HmmKernel::create(random_model(rng, 6));

  GuardrailConfig guard;
  guard.enabled = true;
  guard.window = 4;
  guard.min_observations = 2;
  guard.confirm_observations = 2;
  const SurpriseBaseline baseline{-1.0, 1.0};

  // Twin populations: index-matched, identically constructed.
  std::vector<std::unique_ptr<SessionPredictor>> via_batch;
  std::vector<std::unique_ptr<SessionPredictor>> via_scalar;
  const auto add_pair = [&](auto make) {
    via_batch.push_back(make());
    via_scalar.push_back(make());
  };
  for (int i = 0; i < 6; ++i) {
    const auto& kernel = (i % 2 == 0) ? kernel_a : kernel_b;
    add_pair([&] {
      return std::make_unique<HmmSessionPredictor>(kernel, 2.0);
    });
    add_pair([&] {
      return std::make_unique<GuardedSessionPredictor>(kernel, 2.0, 1.5,
                                                       baseline, guard);
    });
  }

  std::vector<ObserveBatchItem> items(via_batch.size());
  for (int round = 0; round < 15; ++round) {
    for (std::size_t i = 0; i < via_batch.size(); ++i) {
      const auto& model =
          (i / 2 % 2 == 0) ? kernel_a->model() : kernel_b->model();
      const double w = random_sample(rng, model);
      items[i] = {via_batch[i].get(), w, 0.0, false};
      via_scalar[i]->observe(w);
    }
    const BatchStats stats = Cs2pEngine::observe_batch(items);
    EXPECT_EQ(stats.batched + stats.scalar, items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_NEAR(items[i].prediction, via_scalar[i]->predict(1), kTol)
          << "round " << round << " item " << i;
      const auto ll_b = via_batch[i]->last_log_likelihood();
      const auto ll_s = via_scalar[i]->last_log_likelihood();
      ASSERT_EQ(ll_b.has_value(), ll_s.has_value());
      if (ll_b.has_value()) {
        if (std::isfinite(*ll_s)) {
          ASSERT_NEAR(*ll_b, *ll_s, kTol);
        } else {
          ASSERT_EQ(*ll_b, *ll_s);  // both -inf on a degenerate update
        }
      }
      ASSERT_EQ(via_batch[i]->serve_flags(), via_scalar[i]->serve_flags())
          << "round " << round << " item " << i;
    }

    std::vector<PredictBatchItem> predicts(items.size());
    const unsigned steps = 1 + static_cast<unsigned>(rng.uniform_index(20));
    for (std::size_t i = 0; i < items.size(); ++i)
      predicts[i] = {via_batch[i].get(), steps, 0.0, false};
    Cs2pEngine::predict_batch(predicts);
    for (std::size_t i = 0; i < predicts.size(); ++i)
      ASSERT_NEAR(predicts[i].prediction, via_scalar[i]->predict(steps), kTol)
          << "round " << round << " item " << i << " horizon " << steps;
  }
}

/// Cold-start predictors never enter the kernel batch: predict_batch must
/// serve their initial value through the scalar path and say so in stats.
TEST(BatchFilter, ColdStartPredictsInitialValueViaScalarPath) {
  const auto kernel = HmmKernel::create(
      GaussianHmm{{0.6, 0.4},
                  Matrix{{0.9, 0.1}, {0.2, 0.8}},
                  {{1.0, 0.1}, {5.0, 0.5}}});
  HmmSessionPredictor cold(kernel, 7.25);
  PredictBatchItem item{&cold, 1, 0.0, false};
  const BatchStats stats = Cs2pEngine::predict_batch({&item, 1});
  EXPECT_EQ(stats.scalar, 1u);
  EXPECT_EQ(stats.batched, 0u);
  EXPECT_FALSE(item.via_batch_kernel);
  EXPECT_DOUBLE_EQ(item.prediction, 7.25);
}

}  // namespace
}  // namespace cs2p
