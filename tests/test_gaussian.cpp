// Tests for Gaussian density helpers (util/gaussian.h).

#include "util/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cs2p {
namespace {

TEST(Gaussian, PeakValueStandardNormal) {
  EXPECT_NEAR(gaussian_pdf(0.0, 0.0, 1.0), 0.3989422804, 1e-9);
}

TEST(Gaussian, SymmetryAroundMean) {
  EXPECT_DOUBLE_EQ(gaussian_pdf(2.0, 5.0, 1.5), gaussian_pdf(8.0, 5.0, 1.5));
}

TEST(Gaussian, LogPdfConsistentWithPdf) {
  for (double x : {-2.0, 0.0, 1.3, 7.7}) {
    EXPECT_NEAR(std::exp(gaussian_log_pdf(x, 1.0, 2.0)), gaussian_pdf(x, 1.0, 2.0),
                1e-12);
  }
}

TEST(Gaussian, NumericIntegralIsOne) {
  double integral = 0.0;
  const double step = 0.001;
  for (double x = -8.0; x < 8.0; x += step)
    integral += gaussian_pdf(x, 0.0, 1.0) * step;
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(Gaussian, SigmaFloorPreventsInfiniteDensity) {
  // sigma = 0 would blow up; the floor keeps values finite.
  const double at_mean = gaussian_pdf(1.0, 1.0, 0.0);
  EXPECT_TRUE(std::isfinite(at_mean));
  EXPECT_GT(at_mean, 0.0);
  EXPECT_DOUBLE_EQ(at_mean, gaussian_pdf(1.0, 1.0, kMinEmissionSigma));
}

TEST(Gaussian, FarTailIsFiniteInLogSpace) {
  const double log_p = gaussian_log_pdf(1000.0, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(log_p));
  EXPECT_LT(log_p, -100000.0);
  // In linear space it underflows to zero gracefully.
  EXPECT_DOUBLE_EQ(gaussian_pdf(1000.0, 0.0, 1.0), 0.0);
}

TEST(Gaussian, WiderSigmaFlattens) {
  EXPECT_GT(gaussian_pdf(0.0, 0.0, 1.0), gaussian_pdf(0.0, 0.0, 3.0));
  EXPECT_LT(gaussian_pdf(5.0, 0.0, 1.0), gaussian_pdf(5.0, 0.0, 3.0));
}

}  // namespace
}  // namespace cs2p
