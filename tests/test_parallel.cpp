// Tests for the data-parallel helper (util/parallel.h).

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cs2p {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialFallbackWithOneThread) {
  // max_threads = 1 must run in-order on the calling thread.
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ResultsMatchSerialComputation) {
  constexpr std::size_t kN = 5000;
  std::vector<double> parallel_out(kN), serial_out(kN);
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 10; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  parallel_for(kN, [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < kN; ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> count{0};
  parallel_for(3, [&](std::size_t) { count.fetch_add(1); }, 64);
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace cs2p
