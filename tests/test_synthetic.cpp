// Tests for the synthetic trace generator: determinism, structural
// invariants, and the four §3 observations the generator must reproduce.

#include "dataset/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/stats.h"

namespace cs2p {
namespace {

SyntheticConfig small_config(std::uint64_t seed = 5) {
  SyntheticConfig config;
  config.num_isps = 4;
  config.num_provinces = 4;
  config.cities_per_province = 2;
  config.num_servers = 6;
  config.num_sessions = 1500;
  config.seed = seed;
  return config;
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Dataset a = generate_synthetic_dataset(small_config(9));
  const Dataset b = generate_synthetic_dataset(small_config(9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sessions()[i].features.isp, b.sessions()[i].features.isp);
    ASSERT_EQ(a.sessions()[i].throughput_mbps.size(),
              b.sessions()[i].throughput_mbps.size());
    EXPECT_DOUBLE_EQ(a.sessions()[i].throughput_mbps[0],
                     b.sessions()[i].throughput_mbps[0]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Dataset a = generate_synthetic_dataset(small_config(1));
  const Dataset b = generate_synthetic_dataset(small_config(2));
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i)
    any_difference = a.sessions()[i].throughput_mbps != b.sessions()[i].throughput_mbps;
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, RejectsDegenerateConfig) {
  SyntheticConfig config = small_config();
  config.num_isps = 0;
  EXPECT_THROW(SyntheticWorld{config}, std::invalid_argument);
  config = small_config();
  config.max_flows = 0;
  EXPECT_THROW(SyntheticWorld{config}, std::invalid_argument);
  config = small_config();
  config.days = 0;
  EXPECT_THROW(SyntheticWorld{config}, std::invalid_argument);
}

TEST(Synthetic, SessionsRespectStructuralInvariants) {
  const SyntheticConfig config = small_config();
  const Dataset dataset = generate_synthetic_dataset(config);
  ASSERT_EQ(dataset.size(), config.num_sessions);
  for (const auto& s : dataset.sessions()) {
    EXPECT_GE(s.throughput_mbps.size(), config.min_epochs);
    EXPECT_LE(s.throughput_mbps.size(), config.max_epochs);
    EXPECT_GE(s.day, 0);
    EXPECT_LT(s.day, config.days);
    EXPECT_GE(s.start_hour, 0.0);
    EXPECT_LT(s.start_hour, 24.0);
    for (double w : s.throughput_mbps) {
      ASSERT_GE(w, config.min_throughput_mbps);
      ASSERT_TRUE(std::isfinite(w));
    }
  }
}

TEST(Synthetic, ProfileIsDeterministicPerFeatureTuple) {
  const SyntheticWorld world(small_config());
  SessionFeatures f = {"ISP1", "AS10", "Province2", "City2-1", "Server3", "Pfx11"};
  const ClusterProfile a = world.profile_for(f);
  const ClusterProfile b = world.profile_for(f);
  EXPECT_DOUBLE_EQ(a.capacity_mbps, b.capacity_mbps);
  ASSERT_EQ(a.state_means.size(), b.state_means.size());
  EXPECT_DOUBLE_EQ(a.state_means[0], b.state_means[0]);
}

TEST(Synthetic, ProfileStateMeansFollowFairSharing) {
  const SyntheticWorld world(small_config());
  SessionFeatures f = {"ISP0", "AS0", "Province1", "City1-0", "Server2", "Pfx3"};
  const ClusterProfile profile = world.profile_for(f);
  ASSERT_EQ(profile.state_means.size(), small_config().max_flows);
  for (std::size_t k = 0; k < profile.state_means.size(); ++k) {
    EXPECT_NEAR(profile.state_means[k],
                profile.capacity_mbps / static_cast<double>(k + 1), 1e-9);
  }
}

TEST(Synthetic, ProfileTransitionIsStochasticAndSticky) {
  const SyntheticWorld world(small_config());
  SessionFeatures f = {"ISP2", "AS20", "Province0", "City0-1", "Server5", "Pfx9"};
  const ClusterProfile profile = world.profile_for(f);
  const std::size_t n = profile.state_means.size();
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += profile.transition(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
    EXPECT_GT(profile.transition(i, i), 0.85);  // Observation 2: sticky
  }
}

TEST(Synthetic, ProfileRejectsUnknownEntities) {
  const SyntheticWorld world(small_config());
  SessionFeatures f = {"ISP99", "AS0", "Province0", "City0-0", "Server0", "Pfx0"};
  EXPECT_THROW(world.profile_for(f), std::invalid_argument);
  f.isp = "ISP0";
  f.city = "garbage";
  EXPECT_THROW(world.profile_for(f), std::invalid_argument);
}

TEST(Synthetic, InitialStateDistributionShiftsWithHour) {
  const SyntheticWorld world(small_config());
  SessionFeatures f = {"ISP0", "AS0", "Province0", "City0-0", "Server0", "Pfx0"};
  const ClusterProfile profile = world.profile_for(f);
  const Vec night = world.initial_state_distribution(profile, 4.0);
  const Vec peak = world.initial_state_distribution(profile, 20.5);
  // At night, low contention (state 0 = full capacity) dominates; the peak
  // distribution must put strictly more mass on higher-contention states.
  double night_high = 0.0, peak_high = 0.0;
  for (std::size_t k = 1; k < night.size(); ++k) {
    night_high += night[k];
    peak_high += peak[k];
  }
  EXPECT_GT(peak_high, night_high);
}

TEST(Synthetic, Observation1HighIntraSessionVariability) {
  const Dataset dataset = generate_synthetic_dataset(small_config());
  const auto covs = dataset.per_session_cov();
  // A meaningful share of sessions shows CoV >= 0.3 (paper: ~half).
  EXPECT_GT(1.0 - ecdf(covs, 0.3), 0.2);
}

TEST(Synthetic, Observation2PersistentEpochs) {
  const Dataset dataset = generate_synthetic_dataset(small_config());
  std::size_t steady = 0, total = 0;
  for (const auto& s : dataset.sessions()) {
    for (std::size_t t = 0; t + 1 < s.throughput_mbps.size(); ++t) {
      const double ratio = s.throughput_mbps[t + 1] / s.throughput_mbps[t];
      if (ratio > 0.75 && ratio < 1.33) ++steady;
      ++total;
    }
  }
  // Sticky states: most consecutive epochs stay near the same level.
  EXPECT_GT(static_cast<double>(steady) / static_cast<double>(total), 0.6);
}

TEST(Synthetic, Observation3ClusterSimilarity) {
  SyntheticConfig config = small_config();
  config.num_sessions = 4000;
  const Dataset dataset = generate_synthetic_dataset(config);
  // Within-cluster dispersion of average throughput must be far below the
  // population dispersion.
  std::map<std::string, std::vector<double>> clusters;
  std::vector<double> all;
  for (const auto& s : dataset.sessions()) {
    clusters[feature_key(s.features, kAllFeaturesMask)].push_back(
        s.average_throughput());
    all.push_back(s.average_throughput());
  }
  const double population_cov = coefficient_of_variation(all);
  double within_cov_sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [key, values] : clusters) {
    if (values.size() < 20) continue;
    within_cov_sum += coefficient_of_variation(values);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_LT(within_cov_sum / static_cast<double>(counted), 0.7 * population_cov);
}

TEST(Synthetic, Observation4InteractionMatters) {
  // For triples with an interaction term, capacity is NOT the product of
  // what the individual features suggest: verify via the world's profiles
  // that two cities under the same ISP/server can differ beyond their city
  // congestion ratio.
  const SyntheticWorld world(small_config());
  std::vector<double> ratios;
  for (std::size_t c = 0; c < 4; ++c) {
    SessionFeatures a = {"ISP0", "AS0", "Province0",
                         "City" + std::to_string(c / 2) + "-" + std::to_string(c % 2),
                         "Server0", "Pfx1"};
    ratios.push_back(world.profile_for(a).capacity_mbps);
  }
  // Not all equal (city + interaction effects both present).
  EXPECT_NE(ratios[0], ratios[1]);
}

TEST(Synthetic, EntityNameHelpers) {
  const SyntheticWorld world(small_config());
  EXPECT_EQ(world.isp_name(2), "ISP2");
  EXPECT_EQ(world.city_name(1, 0), "City1-0");
  EXPECT_EQ(world.server_name(5), "Server5");
}

// Property sweep across seeds: the generated dataset is always structurally
// valid and covers both days.
class SyntheticSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSeedSweep, ValidAndCoversDays) {
  SyntheticConfig config = small_config(GetParam());
  config.num_sessions = 600;
  const Dataset dataset = generate_synthetic_dataset(config);
  bool day0 = false, day1 = false;
  for (const auto& s : dataset.sessions()) {
    ASSERT_FALSE(s.throughput_mbps.empty());
    day0 |= s.day == 0;
    day1 |= s.day == 1;
  }
  EXPECT_TRUE(day0);
  EXPECT_TRUE(day1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeedSweep,
                         ::testing::Values(1, 7, 42, 2016, 99991));

}  // namespace
}  // namespace cs2p
