// Overload control & zero-downtime drain (DESIGN.md §14).
//
// Covers the four tentpole behaviors end to end over real sockets:
//   - write backpressure: a slow reader's queue is bounded by construction
//     (write_budget_bytes + one frame) and a stalled one is kicked,
//   - admission control: shed HELLOs answer OVERLOADED with the configured
//     retry-after hint while existing sessions keep being served,
//   - brownout: the ladder steps SUSPECT-tier sessions onto the predictors'
//     cheap path first, then everyone, and steps back off,
//   - graceful drain: new work refused with SHUTTING_DOWN, in-flight
//     sessions stamped kDraining and proactively migrated by ReplicaSet,
//     abandoned sessions reaped under the shrunk drain TTL.
//
// The rolling-restart soak at the bottom is the CI zero-drop gate: three
// ChaosReplicas drained in turn under 64 live sessions, no session ever
// observing a failed operation.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/client.h"
#include "net/fault_injection.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "net/session_table.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "predictors/predictor.h"

namespace cs2p {
namespace {

/// Deterministic in-process model: initial = 2.0, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 0.0;
    };
    return std::make_unique<S>();
  }
};

/// Primary forecast 10.0, cheap brownout forecast 1.0, suspect() driven by
/// a shared flag — the controllable predictor the brownout ladder tests use.
class BrownoutModel final : public PredictorModel {
 public:
  explicit BrownoutModel(std::shared_ptr<std::atomic<bool>> suspect)
      : suspect_(std::move(suspect)) {}
  std::string name() const override { return "Brownout"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      explicit S(std::shared_ptr<std::atomic<bool>> suspect)
          : suspect_(std::move(suspect)) {}
      std::optional<double> predict_initial() const override { return 10.0; }
      double predict(unsigned) const override { return 10.0; }
      void observe(double) override {}
      std::optional<double> predict_brownout(unsigned) const override {
        return 1.0;
      }
      bool suspect() const override {
        return suspect_->load(std::memory_order_relaxed);
      }

     private:
      std::shared_ptr<std::atomic<bool>> suspect_;
    };
    return std::make_unique<S>(suspect_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> suspect_;
};

SessionFeatures features() {
  return {"ISP0", "AS0", "P0", "C0", "S0", "Pfx0"};
}

/// Value of the series rendered exactly as `key`, or NaN.
double series_value(const std::string& exposition, const std::string& key) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.size() > key.size() + 1 && line.compare(0, key.size(), key) == 0 &&
        line[key.size()] == ' ')
      return std::stod(line.substr(key.size() + 1));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void shrink_rcvbuf(const FdHandle& fd, int bytes) {
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

// -- Write backpressure -------------------------------------------------------

TEST(Backpressure, SlowReaderQueueBoundedAndRepliesPipeline) {
  ServerConfig config;
  config.io_threads = 1;
  config.write_budget_bytes = 4 * 1024;
  config.write_stall_timeout_ms = 0;  // reader is slow forever; never kick
  config.so_sndbuf = 4 * 1024;        // make backpressure visible at test scale
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  // A raw socket that floods STATS requests (each reply is several KB) and
  // reads nothing: the server must stop reading it once the write queue
  // crosses budget instead of buffering replies without bound.
  FdHandle slow = connect_loopback(server.port());
  shrink_rcvbuf(slow, 4 * 1024);
  const std::string frame = encode_frame(serialize_request(StatsRequest{}));
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i)
    send_all(slow, std::as_bytes(std::span(frame.data(), frame.size())));

  // Let the server chew as far as backpressure allows.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_LT(server.requests_handled(), static_cast<std::uint64_t>(kRequests));

  // The worker is not wedged behind the slow reader: a second connection is
  // served normally the whole time.
  PredictionClient probe(server.port());
  const SessionResponse session = probe.hello(features(), 0.0);
  EXPECT_DOUBLE_EQ(probe.observe(session.session_id, 3.0), 4.0);
  probe.bye(session.session_id);

  // The reader recovers: every flood request eventually gets its pipelined
  // reply, in order, as we drain.
  for (int i = 0; i < kRequests; ++i) {
    const std::optional<std::string> payload = recv_frame(slow);
    ASSERT_TRUE(payload.has_value()) << "EOF after " << i << " replies";
    const Response response = parse_response(*payload);
    ASSERT_TRUE(std::holds_alternative<StatsResponse>(response));
  }

  // The bound the whole mechanism exists for: no matter how slow the reader,
  // the queue high-water mark stays within budget + one encoded frame.
  EXPECT_GT(server.max_write_queue_bytes(), 0u);
  EXPECT_LE(server.max_write_queue_bytes(),
            config.write_budget_bytes + kMaxFrameBytes + kFrameHeaderBytes);
}

TEST(Backpressure, StalledReaderIsKicked) {
  ServerConfig config;
  config.io_threads = 1;
  config.write_budget_bytes = 4 * 1024;
  config.write_stall_timeout_ms = 100;
  config.so_sndbuf = 4 * 1024;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  FdHandle stalled = connect_loopback(server.port());
  shrink_rcvbuf(stalled, 4 * 1024);
  const std::string frame = encode_frame(serialize_request(StatsRequest{}));
  for (int i = 0; i < 200; ++i)
    send_all(stalled, std::as_bytes(std::span(frame.data(), frame.size())));

  // Never read: once the kernel buffers fill, the flush makes no progress
  // and the stall deadline closes the connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.slow_reader_kicks() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(server.slow_reader_kicks(), 1u);

  // The slot is reclaimed; a well-behaved client is unaffected.
  PredictionClient probe(server.port());
  const SessionResponse session = probe.hello(features(), 0.0);
  EXPECT_DOUBLE_EQ(probe.observe(session.session_id, 3.0), 4.0);
}

// -- Admission control --------------------------------------------------------

TEST(AdmissionControl, ShedRejectsNewHellosKeepsServingSessions) {
  ServerConfig config;
  config.io_threads = 1;
  config.retry_after_ms = 123;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 0.0);

  server.set_shedding(true);
  PredictionClient late(server.port());
  try {
    late.hello(features(), 1.0);
    FAIL() << "shed HELLO must answer OVERLOADED";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kOverloaded);
    EXPECT_EQ(e.retry_after_ms(), 123u);
  }
  EXPECT_GE(server.hellos_shed(), 1u);

  // Shedding gates admission only: the established session is untouched.
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(client.predict(session.session_id, 1), 4.0);

  server.set_shedding(false);
  const SessionResponse second = late.hello(features(), 1.0);
  EXPECT_GT(second.session_id, 0u);
}

// -- Brownout ladder ----------------------------------------------------------

TEST(Brownout, LadderServesCheapPathSuspectTierFirst) {
  auto suspect = std::make_shared<std::atomic<bool>>(false);
  ServerConfig config;
  config.io_threads = 1;
  PredictionServer server(std::make_shared<BrownoutModel>(suspect), config);

  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 0.0);

  // Level 0: primary path.
  PredictionResponse r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 10.0);
  EXPECT_EQ(r.flags, serve_flags::kPrimary);

  // Level 1 degrades only SUSPECT-tier sessions.
  server.set_brownout_level(1);
  EXPECT_EQ(server.brownout_level(), 1);
  r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 10.0);  // healthy session keeps the primary path

  suspect->store(true, std::memory_order_relaxed);
  r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 1.0);
  EXPECT_NE(r.flags & serve_flags::kBrownout, 0);
  EXPECT_NE(r.flags & serve_flags::kDegraded, 0);
  EXPECT_GE(server.brownout_replies(), 1u);

  // Level 2 degrades everyone with a cheap path.
  suspect->store(false, std::memory_order_relaxed);
  server.set_brownout_level(2);
  r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 1.0);
  EXPECT_NE(r.flags & serve_flags::kBrownout, 0);

  // Stepping back off restores the primary path.
  server.set_brownout_level(0);
  r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 10.0);
  EXPECT_EQ(r.flags, serve_flags::kPrimary);
}

TEST(Brownout, FamiliesWithoutCheapPathStayPrimary) {
  ServerConfig config;
  config.io_threads = 1;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 0.0);

  // EchoPlusOne has no predict_brownout: even at level 2 the server serves
  // the primary forecast rather than inventing a degraded one.
  server.set_brownout_level(2);
  client.observe(session.session_id, 3.0);
  const PredictionResponse r = client.predict_response(session.session_id, 1);
  EXPECT_DOUBLE_EQ(r.mbps, 4.0);
  EXPECT_EQ(r.flags & serve_flags::kBrownout, 0);
  EXPECT_EQ(server.brownout_replies(), 0u);
}

// -- Graceful drain -----------------------------------------------------------

TEST(Drain, LifecycleRefusesNewWorkStampsDrainingCompletesOnBye) {
  ServerConfig config;
  config.io_threads = 1;
  config.retry_after_ms = 77;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 0.0);
  EXPECT_FALSE(server.draining());

  server.begin_drain();
  EXPECT_TRUE(server.draining());
  EXPECT_FALSE(server.drained());  // the session is still live

  // New connections are refused at accept with SHUTTING_DOWN + retry-after.
  PredictionClient late(server.port());
  try {
    late.hello(features(), 1.0);
    FAIL() << "draining server must refuse new connections";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kShuttingDown);
    EXPECT_EQ(e.retry_after_ms(), 77u);
  }

  // A new HELLO on an established connection is refused the same way.
  try {
    client.hello(features(), 2.0);
    FAIL() << "draining server must refuse new HELLOs";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kShuttingDown);
    EXPECT_EQ(e.retry_after_ms(), 77u);
  }

  // The in-flight session keeps being served, every reply stamped kDraining
  // — the migrate-now hint — without counting as a degraded forecast.
  const PredictionResponse r = client.observe_response(session.session_id, 3.0);
  EXPECT_DOUBLE_EQ(r.mbps, 4.0);
  EXPECT_NE(r.flags & serve_flags::kDraining, 0);
  EXPECT_EQ(server.degraded_replies(), 0u);

  client.bye(session.session_id);
  EXPECT_TRUE(server.wait_drained(2'000));
  EXPECT_TRUE(server.drained());

  const std::string scrape = server.metrics().scrape();
  EXPECT_DOUBLE_EQ(series_value(scrape, "cs2p_server_draining"), 1.0);
  EXPECT_GE(series_value(scrape, "cs2p_server_drain_rejections_total"), 2.0);
  EXPECT_GE(series_value(scrape, "cs2p_server_last_drain_seconds"), 0.0);

  server.begin_drain();  // idempotent
  EXPECT_TRUE(server.drained());
}

TEST(Drain, ShrunkTtlReapsAbandonedSessions) {
  ServerConfig config;
  config.io_threads = 1;
  config.session_ttl_ms = 120'000;   // steady state would hold them forever
  config.drain_session_ttl_ms = 50;  // the drain must not wait that out
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  PredictionClient client(server.port());
  constexpr int kAbandoned = 8;
  for (int i = 0; i < kAbandoned; ++i) client.hello(features(), 0.0);
  EXPECT_EQ(server.session_count(), static_cast<std::size_t>(kAbandoned));

  server.begin_drain();
  EXPECT_EQ(server.session_table().ttl_ms(), 50);
  EXPECT_TRUE(server.wait_drained(5'000));
  EXPECT_GE(server.sessions_evicted(), static_cast<std::uint64_t>(kAbandoned));
}

TEST(Drain, SessionTableEvictionRacesTtlRearm) {
  // The drain path re-arms the TTL while workers keep ticking eviction and
  // the serve path keeps inserting/erasing — the TSan job runs this to prove
  // those never race.
  SessionTableConfig config;
  config.shards = 4;
  config.ttl_ms = 100'000;
  config.evict_scan_budget = 8;
  SessionTable table(config);

  const auto make_entry = [](std::uint64_t) {
    SessionTable::Entry entry;
    entry.last_used = SessionTable::Clock::now();
    return entry;
  };

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    std::vector<std::uint64_t> ids;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 4; ++i) ids.push_back(table.emplace(make_entry));
      while (ids.size() > 2) {
        table.erase(ids.back());
        ids.pop_back();
      }
    }
  });
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_relaxed))
      table.evict_tick(SessionTable::Clock::now());
  });
  std::thread rearmer([&] {
    bool drain = false;
    while (!stop.load(std::memory_order_relaxed)) {
      table.set_ttl_ms(drain ? 1 : 100'000);
      drain = !drain;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  evictor.join();
  rearmer.join();

  // Final drain sweep: with the TTL at its floor every survivor expires.
  table.set_ttl_ms(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (table.size() > 0 && std::chrono::steady_clock::now() < deadline) {
    table.evict_tick(SessionTable::Clock::now());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(table.size(), 0u);
}

// -- Client tier under overload and drain ------------------------------------

TEST(ReplicaOverload, BacksOffOnRetryAfterThenRecovers) {
  ServerConfig config;
  config.io_threads = 1;
  config.retry_after_ms = 40;
  PredictionServer a(std::make_shared<EchoPlusOneModel>(), config);
  PredictionServer b(std::make_shared<EchoPlusOneModel>(), config);
  a.set_shedding(true);
  b.set_shedding(true);

  ReplicaSetConfig rc;
  rc.client.backoff_jitter = 0.5;  // sleeps land in (20, 40] ms
  rc.overload_retry_passes = 4;
  rc.down_probe_after_ms = 1;
  ReplicaSet set({a.port(), b.port()}, rc);

  // The whole tier sheds, then one replica recovers mid-backoff: the hello
  // must ride the server's retry-after hint to success instead of failing.
  std::thread relief([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    a.set_shedding(false);
  });
  const auto t0 = std::chrono::steady_clock::now();
  const SessionResponse session = set.hello(features(), 0.0);
  const auto waited = std::chrono::steady_clock::now() - t0;
  relief.join();
  EXPECT_GT(session.session_id, 0u);
  // At least one jittered retry-after sleep happened (no hot-spin).
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(),
            20);
  EXPECT_GE(set.replica_client(0).overloaded_replies() +
                set.replica_client(1).overloaded_replies(),
            1u);

  // With every pass exhausted the overload finally surfaces — typed, after
  // the full backoff schedule, not as a spin.
  a.set_shedding(true);
  const auto t1 = std::chrono::steady_clock::now();
  try {
    set.hello(features(), 1.0);
    FAIL() << "an all-shedding tier must surface OVERLOADED";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kOverloaded);
  }
  const auto exhausted = std::chrono::steady_clock::now() - t1;
  EXPECT_GE(
      std::chrono::duration_cast<std::chrono::milliseconds>(exhausted).count(),
      3 * 20);  // (passes - 1) sleeps, each > 20 ms
}

TEST(ReplicaDrain, PlannedMigrationOnDrainingHint) {
  ServerConfig config;
  config.io_threads = 1;
  PredictionServer a(std::make_shared<EchoPlusOneModel>(), config);
  PredictionServer b(std::make_shared<EchoPlusOneModel>(), config);
  ReplicaSet set({a.port(), b.port()});

  const SessionResponse session = set.hello(features(), 3.0);
  const std::size_t first = set.session_replica(session.session_id);
  PredictionServer& old_server = first == 0 ? a : b;
  PredictionServer& new_server = first == 0 ? b : a;
  EXPECT_EQ(old_server.session_count(), 1u);

  old_server.begin_drain();

  // The very next operation is still served (and answers correctly), carries
  // the kDraining hint, and triggers the proactive move.
  const PredictionResponse r = set.observe_response(session.session_id, 3.0);
  EXPECT_DOUBLE_EQ(r.mbps, 4.0);
  EXPECT_NE(r.flags & serve_flags::kDraining, 0);
  EXPECT_NE(set.session_replica(session.session_id), first);
  EXPECT_GE(set.planned_migrations(), 1u);
  EXPECT_TRUE(set.replica_draining(first));

  // The migration BYEd the old replica, so its drain completes without
  // waiting out any TTL.
  EXPECT_TRUE(old_server.wait_drained(2'000));
  EXPECT_EQ(new_server.session_count(), 1u);

  // The session keeps serving from the new replica, hint-free.
  const PredictionResponse r2 = set.observe_response(session.session_id, 5.0);
  EXPECT_DOUBLE_EQ(r2.mbps, 6.0);
  EXPECT_EQ(r2.flags & serve_flags::kDraining, 0);
}

// -- Rolling restart (the CI zero-drop soak) ---------------------------------

TEST(RollingRestart, DrainEachReplicaInTurnDropsNoSessions) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  ServerConfig config;
  config.io_threads = 2;
  config.session_shards = 4;
  config.drain_session_ttl_ms = 200;
  config.retry_after_ms = 50;
  config.metrics = registry;
  ReplicaFaultSpec fault;  // no auto-kill; drains are driven explicitly

  constexpr int kReplicas = 3;
  std::vector<std::unique_ptr<ChaosReplica>> replicas;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < kReplicas; ++i) {
    replicas.push_back(std::make_unique<ChaosReplica>(
        [] { return std::make_shared<EchoPlusOneModel>(); }, config, fault));
    ports.push_back(replicas.back()->port());
  }

  ReplicaSetConfig rc;
  rc.overload_retry_passes = 3;
  rc.down_probe_after_ms = 50;
  rc.metrics = registry;
  ReplicaSet set(ports, rc);

  constexpr int kThreads = 16;
  constexpr int kSessionsPerThread = 4;  // 64 live sessions
  std::atomic<bool> stop{false};
  std::atomic<int> dropped{0};
  std::vector<std::thread> players;
  for (int t = 0; t < kThreads; ++t) {
    players.emplace_back([&, t] {
      std::vector<std::uint64_t> ids;
      try {
        for (int s = 0; s < kSessionsPerThread; ++s)
          ids.push_back(
              set.hello(features(), static_cast<double>(t % 24)).session_id);
        int round = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (const std::uint64_t id : ids) {
            const double sample = 1.0 + (t + round) % 7;
            const PredictionResponse r = set.observe_response(id, sample);
            if (r.mbps != sample + 1.0) ++dropped;
          }
          ++round;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      } catch (const std::exception&) {
        // Any thrown operation is a dropped session — the soak's failure.
        ++dropped;
      }
      try {
        for (const std::uint64_t id : ids) set.bye(id);
      } catch (const std::exception&) {
        // BYE is best-effort by contract.
      }
    });
  }

  // Let the fleet of sessions establish, then restart every replica in
  // turn: each must drain clean (sessions migrated or reaped) before its
  // deadline, and no player may ever see a failed operation.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::vector<bool> clean;
  for (auto& replica : replicas) {
    clean.push_back(replica->drain_and_restart(/*drain_deadline_ms=*/5'000));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : players) t.join();

  EXPECT_EQ(dropped.load(), 0);
  for (int i = 0; i < kReplicas; ++i) {
    EXPECT_TRUE(clean[static_cast<std::size_t>(i)]) << "replica " << i;
    EXPECT_EQ(replicas[static_cast<std::size_t>(i)]->drains(), 1u);
    EXPECT_EQ(replicas[static_cast<std::size_t>(i)]->resurrections(), 1u);
  }
  EXPECT_GE(set.planned_migrations(), 1u);

  // Drain telemetry is scrapable over the wire from any live replica (the
  // registry is shared across the tier).
  PredictionClient scraper(ports[0]);
  const StatsResponse stats = scraper.stats();
  EXPECT_GE(series_value(stats.exposition, "cs2p_server_last_drain_seconds"),
            0.0);
  EXPECT_GE(series_value(stats.exposition, "cs2p_server_drain_rejections_total"),
            0.0);
}

}  // namespace
}  // namespace cs2p
