// Tests for prediction-error metrics (util/error_metrics.h).

#include "util/error_metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace cs2p {
namespace {

TEST(ErrorMetrics, Equation1) {
  EXPECT_DOUBLE_EQ(absolute_normalized_error(1.2, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(absolute_normalized_error(0.8, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(absolute_normalized_error(2.0, 2.0), 0.0);
}

TEST(ErrorMetrics, NegativeActualUsesMagnitude) {
  EXPECT_DOUBLE_EQ(absolute_normalized_error(-1.0, -2.0), 0.5);
}

TEST(ErrorMetrics, ZeroActualFallsBackToAbsolute) {
  EXPECT_DOUBLE_EQ(absolute_normalized_error(0.7, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(absolute_normalized_error(-0.7, 0.0), 0.7);
}

TEST(ErrorMetrics, SessionSummary) {
  const std::vector<double> errors = {0.1, 0.2, 0.3, 0.4, 1.0};
  const auto summary = summarize_session_errors(errors);
  EXPECT_DOUBLE_EQ(summary.session_median, 0.3);
  EXPECT_DOUBLE_EQ(summary.session_mean, 0.4);
  EXPECT_NEAR(summary.session_p90, 0.76, 1e-12);
}

TEST(ErrorMetrics, CrossSessionSummary) {
  std::vector<SessionErrorSummary> sessions;
  for (double m : {0.1, 0.2, 0.3}) {
    SessionErrorSummary s;
    s.session_median = m;
    s.session_mean = m + 0.05;
    s.session_p90 = m * 2;
    sessions.push_back(s);
  }
  const auto cross = summarize_across_sessions(sessions);
  EXPECT_DOUBLE_EQ(cross.median_of_medians, 0.2);
  EXPECT_NEAR(cross.mean_of_means, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(cross.median_of_p90s, 0.4);
  EXPECT_NEAR(cross.p90_of_medians, 0.28, 1e-12);
}

TEST(ErrorMetrics, EmptyInputsAreZero) {
  const auto summary = summarize_session_errors({});
  EXPECT_DOUBLE_EQ(summary.session_median, 0.0);
  const auto cross = summarize_across_sessions({});
  EXPECT_DOUBLE_EQ(cross.median_of_medians, 0.0);
}

}  // namespace
}  // namespace cs2p
