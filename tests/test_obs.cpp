// Tests for the telemetry layer (DESIGN.md §11): metrics registry semantics,
// histogram bucket/quantile math, scrape grammar, concurrency soundness of
// the sharded counters (the TSan CI job runs this binary), and the
// deterministic session-sampled JSONL trace log.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cs2p::obs {
namespace {

// -- Counter / Gauge ---------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("cs2p_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, FindOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("cs2p_test_total");
  Counter& b = registry.counter("cs2p_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labelled = registry.counter("cs2p_test_total", {{"verb", "hello"}});
  EXPECT_NE(&a, &labelled);
  // Label order must not matter: both spell the same series.
  Counter& ab = registry.counter("cs2p_t", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.counter("cs2p_t", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("cs2p_test_gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
}

TEST(Registry, RejectsTypeConflictsAndBadNames) {
  MetricsRegistry registry;
  registry.counter("cs2p_thing_total");
  EXPECT_THROW(registry.gauge("cs2p_thing_total"), std::invalid_argument);
  EXPECT_THROW(registry.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(registry.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_name", {{"bad key", "v"}}),
               std::invalid_argument);
}

// -- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketBoundaryPlacement) {
  // Upper bounds are inclusive (Prometheus le semantics): a value exactly on
  // a bound lands in that bound's bucket, epsilon above goes to the next.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (le=1)
  h.observe(1.0);   // bucket 0 (le=1, inclusive)
  h.observe(1.001); // bucket 1 (le=2)
  h.observe(4.0);   // bucket 2 (le=4, inclusive)
  h.observe(4.001); // +inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 4.001, 1e-9);
}

TEST(Histogram, DropsNaNKeepsInfinity) {
  Histogram h({1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // +inf bucket
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniformly inside (1, 2]: all land in bucket le=2.
  for (int i = 1; i <= 100; ++i) h.observe(1.0 + i / 100.0);
  // Interpolation assumes uniform fill: p50 ~ midpoint of [1, 2].
  EXPECT_NEAR(h.quantile(0.5), 1.5, 0.05);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 0.05);
  EXPECT_NEAR(h.quantile(1.0), 2.0, 1e-9);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.quantile(0.5), 0.0);  // no observations

  Histogram inf_heavy({1.0, 2.0});
  inf_heavy.observe(100.0);
  inf_heavy.observe(200.0);
  // Everything is in the +inf bucket: clamp to the last finite bound.
  EXPECT_EQ(inf_heavy.quantile(0.99), 2.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(Histogram, DefaultLatencyBucketsCoverMicrosecondsToSeconds) {
  const auto bounds = default_latency_buckets_seconds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 8.0);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
}

// -- Scrape grammar ----------------------------------------------------------

TEST(Scrape, VersionHeaderAndLexicographicOrder) {
  MetricsRegistry registry;
  registry.counter("cs2p_b_total").inc(2);
  registry.counter("cs2p_a_total").inc(1);
  registry.gauge("cs2p_c_gauge").set(0.5);
  const std::string text = registry.scrape();
  std::istringstream in(text);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# cs2p_metrics_version " +
                      std::to_string(kMetricsExpositionVersion));
  std::getline(in, line);
  EXPECT_EQ(line, "cs2p_a_total 1");
  std::getline(in, line);
  EXPECT_EQ(line, "cs2p_b_total 2");
  std::getline(in, line);
  EXPECT_EQ(line, "cs2p_c_gauge 0.5");
}

TEST(Scrape, HistogramRendersCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("cs2p_lat_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = registry.scrape();
  EXPECT_NE(text.find("cs2p_lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("cs2p_lat_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("cs2p_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cs2p_lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("cs2p_lat_seconds_sum 11\n"), std::string::npos);
}

TEST(Scrape, LabelledHistogramKeepsLabelsNextToLe) {
  MetricsRegistry registry;
  registry.histogram("cs2p_lat_seconds", {1.0}, {{"verb", "hello"}}).observe(0.5);
  const std::string text = registry.scrape();
  EXPECT_NE(text.find("cs2p_lat_seconds_bucket{verb=\"hello\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cs2p_lat_seconds_count{verb=\"hello\"} 1\n"),
            std::string::npos);
}

TEST(Scrape, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("cs2p_esc_total", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = registry.scrape();
  EXPECT_NE(text.find("cs2p_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

// -- Concurrency soak (the TSan job's main course) ---------------------------

TEST(Concurrency, ShardedCountersUnderContention) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("cs2p_soak_total");
  Gauge& gauge = registry.gauge("cs2p_soak_gauge");
  Histogram& histogram =
      registry.histogram("cs2p_soak_seconds", default_latency_buckets_seconds());

  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20'000;
  std::atomic<bool> stop_scraping{false};

  // A scraper thread reads while writers write: bucket counts, sums and the
  // registry map must stay coherent (no torn reads, no data races).
  std::thread scraper([&] {
    while (!stop_scraping.load()) {
      const std::string text = registry.scrape();
      EXPECT_NE(text.find("cs2p_soak_total"), std::string::npos);
      (void)histogram.quantile(0.5);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter.inc();
        gauge.set(static_cast<double>(t));
        histogram.observe(1e-5 * (1 + i % 100));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_scraping.store(true);
  scraper.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : histogram.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(Concurrency, ConcurrentRegistration) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> results(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { results[t] = &registry.counter("cs2p_same_total"); });
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
}

// -- Trace sampling ----------------------------------------------------------

TEST(TraceSampling, RateZeroAndOneAreAbsolute) {
  for (std::uint64_t sid = 1; sid <= 500; ++sid) {
    EXPECT_FALSE(trace_sample_decision(123, 0.0, sid));
    EXPECT_TRUE(trace_sample_decision(123, 1.0, sid));
  }
}

TEST(TraceSampling, DeterministicAcrossCallsAndProportionalToRate) {
  int sampled = 0;
  for (std::uint64_t sid = 1; sid <= 2000; ++sid) {
    const bool first = trace_sample_decision(42, 0.25, sid);
    const bool second = trace_sample_decision(42, 0.25, sid);
    EXPECT_EQ(first, second);  // same seed, same session -> same decision
    if (first) ++sampled;
  }
  // Hash-uniform sampling at 25%: allow a generous band around 500/2000.
  EXPECT_GT(sampled, 350);
  EXPECT_LT(sampled, 650);
}

TEST(TraceSampling, SeedChangesTheSampledSet) {
  int differing = 0;
  for (std::uint64_t sid = 1; sid <= 1000; ++sid)
    if (trace_sample_decision(1, 0.5, sid) != trace_sample_decision(2, 0.5, sid))
      ++differing;
  EXPECT_GT(differing, 250);  // independent hashes differ about half the time
}

TEST(TraceSampling, SampledSessionKeepsFullLifecycle) {
  // Sampling is per-session, not per-record: any record of a sampled session
  // must pass, at every rate the session passes at.
  const std::uint64_t sid = 7;
  const bool at_half = trace_sample_decision(9, 0.5, sid);
  for (int repeat = 0; repeat < 10; ++repeat)
    EXPECT_EQ(trace_sample_decision(9, 0.5, sid), at_half);
}

// -- TraceLog JSONL ----------------------------------------------------------

class TraceLogTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "cs2p_trace_test.jsonl";
  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> read_lines() {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }
};

TEST_F(TraceLogTest, EmitsOneJsonObjectPerLine) {
  {
    TraceLog trace({path_, 1.0, 1});
    trace.emit("hello", 42,
               {{"cluster", std::string_view("isp=cmcc")},
                {"initial_mbps", 2.5},
                {"parse_us", std::uint64_t{12}}});
    trace.emit("observe", 42,
               {{"flags", std::uint64_t{3}}, {"degraded", true}});
    trace.flush();
    EXPECT_EQ(trace.events_written(), 2u);
  }
  const auto lines = read_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ev\":\"hello\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"sid\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"mono_us\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cluster\":\"isp=cmcc\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"initial_mbps\":2.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"flags\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"degraded\":true"), std::string::npos);
  // Every line is a braced object.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(TraceLogTest, NonFiniteDoublesSerializeAsNull) {
  {
    TraceLog trace({path_, 1.0, 1});
    trace.emit("predict", 1,
               {{"ll", std::numeric_limits<double>::quiet_NaN()},
                {"mbps", std::numeric_limits<double>::infinity()}});
    trace.flush();
  }
  const auto lines = read_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ll\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"mbps\":null"), std::string::npos);
}

TEST_F(TraceLogTest, EscapesStrings) {
  {
    TraceLog trace({path_, 1.0, 1});
    trace.emit("hello", 1, {{"cluster", std::string_view("a\"b\\c\nd")}});
    trace.flush();
  }
  const auto lines = read_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cluster\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST_F(TraceLogTest, ShouldSampleMatchesFreeFunction) {
  TraceLog trace({path_, 0.3, 77});
  for (std::uint64_t sid = 1; sid <= 200; ++sid)
    EXPECT_EQ(trace.should_sample(sid), trace_sample_decision(77, 0.3, sid));
}

TEST_F(TraceLogTest, AppendsAcrossReopens) {
  {
    TraceLog trace({path_, 1.0, 1});
    trace.emit("hello", 1, {});
  }
  {
    TraceLog trace({path_, 1.0, 1});
    trace.emit("bye", 1, {});
  }
  EXPECT_EQ(read_lines().size(), 2u);
}

TEST_F(TraceLogTest, ConcurrentEmitKeepsLinesIntact) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  {
    TraceLog trace({path_, 1.0, 1});
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        for (int i = 0; i < kEventsPerThread; ++i)
          trace.emit("observe", static_cast<std::uint64_t>(t),
                     {{"i", static_cast<std::uint64_t>(i)}});
      });
    for (auto& thread : threads) thread.join();
    trace.flush();
    EXPECT_EQ(trace.events_written(),
              static_cast<std::uint64_t>(kThreads) * kEventsPerThread);
  }
  const auto lines = read_lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kEventsPerThread);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(TraceLogConfig, ThrowsOnUnopenablePath) {
  EXPECT_THROW(TraceLog({"/nonexistent-dir-cs2p/trace.jsonl", 1.0, 1}),
               std::runtime_error);
}

}  // namespace
}  // namespace cs2p::obs
