// Tests for the Agg(M, s) cluster index (core/cluster_index.h).

#include "core/cluster_index.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

Session make_session(const std::string& isp, const std::string& city,
                     double hour, std::vector<double> series) {
  Session s;
  s.features = {isp, "AS0", "P0", city, "S0", "Pfx0"};
  s.start_hour = hour;
  s.throughput_mbps = std::move(series);
  return s;
}

constexpr FeatureMask isp_mask() {
  return 1U << static_cast<unsigned>(FeatureId::kIsp);
}
constexpr FeatureMask isp_city_mask() {
  return isp_mask() | (1U << static_cast<unsigned>(FeatureId::kCity));
}

TEST(Candidates, EnumerationCoversAllSubsetsAndWindows) {
  const auto candidates = enumerate_candidates();
  // (2^6 - 1) masks x 3 time granularities.
  EXPECT_EQ(candidates.size(), 63u * 3u);
  // All distinct.
  for (std::size_t i = 0; i < candidates.size(); ++i)
    for (std::size_t j = i + 1; j < candidates.size(); ++j)
      ASSERT_FALSE(candidates[i] == candidates[j]);
}

TEST(Candidates, ToString) {
  EXPECT_EQ(candidate_to_string({isp_city_mask(), TimeGranularity::kDaypart}),
            "ISP+City@daypart");
}

TEST(TimeWindows, BlockBoundaries) {
  EXPECT_EQ(num_blocks(TimeGranularity::kAll), 1);
  EXPECT_EQ(num_blocks(TimeGranularity::kDaypart), 4);
  EXPECT_EQ(num_blocks(TimeGranularity::kTriHour), 8);
  EXPECT_EQ(block_of(0.0, TimeGranularity::kDaypart), 0);
  EXPECT_EQ(block_of(5.99, TimeGranularity::kDaypart), 0);
  EXPECT_EQ(block_of(6.0, TimeGranularity::kDaypart), 1);
  EXPECT_EQ(block_of(23.99, TimeGranularity::kDaypart), 3);
  EXPECT_EQ(block_of(25.0, TimeGranularity::kDaypart), 3);  // clamped
  EXPECT_EQ(block_of(4.0, TimeGranularity::kTriHour), 1);
}

TEST(CandidateIndex, GroupsByMaskedFeatures) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {1.0}));
  train.add(make_session("A", "Y", 2.0, {2.0}));
  train.add(make_session("B", "X", 3.0, {3.0}));

  const CandidateIndex by_isp(train, {isp_mask(), TimeGranularity::kAll});
  EXPECT_EQ(by_isp.num_clusters(), 2u);
  const Cluster* a = by_isp.find(train.sessions()[0].features, 12.0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 2u);
  EXPECT_DOUBLE_EQ(a->initial_median, 1.5);

  const CandidateIndex by_isp_city(train, {isp_city_mask(), TimeGranularity::kAll});
  EXPECT_EQ(by_isp_city.num_clusters(), 3u);
}

TEST(CandidateIndex, TimeWindowSplitsClusters) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {1.0}));    // daypart 0
  train.add(make_session("A", "X", 13.0, {3.0}));   // daypart 2
  const CandidateIndex index(train, {isp_mask(), TimeGranularity::kDaypart});
  EXPECT_EQ(index.num_clusters(), 2u);
  const Cluster* morning = index.find(train.sessions()[0].features, 2.0);
  ASSERT_NE(morning, nullptr);
  EXPECT_EQ(morning->size(), 1u);
  EXPECT_EQ(index.find(train.sessions()[0].features, 7.0), nullptr);
}

TEST(CandidateIndex, SkipsEmptySessions) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {}));
  const CandidateIndex index(train, {isp_mask(), TimeGranularity::kAll});
  EXPECT_EQ(index.num_clusters(), 0u);
}

TEST(CandidateIndex, MediansComputedPerCluster) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {1.0, 3.0}));  // avg 2
  train.add(make_session("A", "X", 2.0, {3.0, 5.0}));  // avg 4
  train.add(make_session("A", "X", 3.0, {5.0, 7.0}));  // avg 6
  const CandidateIndex index(train, {isp_mask(), TimeGranularity::kAll});
  const Cluster* c = index.find(train.sessions()[0].features, 0.0);
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->initial_median, 3.0);
  EXPECT_DOUBLE_EQ(c->average_median, 4.0);
  EXPECT_DOUBLE_EQ(c->average_dispersion, 2.0 / 4.0);  // IQR([2,4,6]) = 2
}

TEST(ClusterIndex, BuildsAllCandidates) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {1.0}));
  const ClusterIndex index(train, enumerate_candidates());
  EXPECT_EQ(index.num_candidates(), 189u);
  EXPECT_EQ(index.index_for(0).num_clusters(), 1u);
}

TEST(ClusterIndex, FindMissReturnsNull) {
  Dataset train;
  train.add(make_session("A", "X", 1.0, {1.0}));
  const CandidateIndex index(train, {isp_mask(), TimeGranularity::kAll});
  SessionFeatures other = {"Z", "AS0", "P0", "X", "S0", "Pfx0"};
  EXPECT_EQ(index.find(other, 1.0), nullptr);
}

}  // namespace
}  // namespace cs2p
