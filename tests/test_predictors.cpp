// Tests for the baseline predictor families (predictors/).

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/synthetic.h"
#include "predictors/ghm.h"
#include "predictors/history.h"
#include "predictors/ml_predictors.h"
#include "predictors/oracle.h"
#include "predictors/simple_cross.h"

namespace cs2p {
namespace {

SessionContext dummy_context() {
  SessionContext context;
  context.features = {"ISP0", "AS0", "Province0", "City0-0", "Server0", "Pfx0"};
  context.start_hour = 10.0;
  return context;
}

Dataset tiny_dataset() {
  SyntheticConfig config;
  config.num_isps = 3;
  config.num_provinces = 2;
  config.cities_per_province = 2;
  config.num_servers = 4;
  config.num_sessions = 800;
  config.seed = 77;
  return generate_synthetic_dataset(config);
}

// ---- History-based predictors ----------------------------------------------

TEST(LastSample, PredictsLastObservation) {
  const LastSampleModel model;
  auto p = model.make_session(dummy_context());
  EXPECT_FALSE(p->predict_initial().has_value());
  p->observe(3.0);
  EXPECT_DOUBLE_EQ(p->predict(1), 3.0);
  EXPECT_DOUBLE_EQ(p->predict(7), 3.0);  // flat multi-step
  p->observe(5.5);
  EXPECT_DOUBLE_EQ(p->predict(1), 5.5);
}

TEST(LastSample, PredictWithoutObservationThrows) {
  const LastSampleModel model;
  auto p = model.make_session(dummy_context());
  EXPECT_THROW(p->predict(1), std::logic_error);
}

TEST(HarmonicMean, MatchesClosedForm) {
  const HarmonicMeanModel model;
  auto p = model.make_session(dummy_context());
  p->observe(1.0);
  p->observe(2.0);
  p->observe(4.0);
  EXPECT_NEAR(p->predict(1), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(HarmonicMean, WindowLimitsHistory) {
  const HarmonicMeanModel model(/*window=*/2);
  auto p = model.make_session(dummy_context());
  p->observe(100.0);  // should fall out of the window
  p->observe(2.0);
  p->observe(2.0);
  EXPECT_NEAR(p->predict(1), 2.0, 1e-12);
}

TEST(HarmonicMean, RobustToLowOutlier) {
  // HM is dominated by small samples — that's its known conservatism.
  const HarmonicMeanModel model;
  auto p = model.make_session(dummy_context());
  p->observe(10.0);
  p->observe(0.1);
  EXPECT_LT(p->predict(1), 0.25);
}

TEST(AutoRegressive, LearnsLinearTrendOnRichHistory) {
  const AutoRegressiveModel model(2);
  auto p = model.make_session(dummy_context());
  // Simple AR(1)-style geometric decay toward 0: w_t = 0.5 w_{t-1}.
  double w = 64.0;
  for (int i = 0; i < 12; ++i) {
    p->observe(w);
    w *= 0.5;
  }
  // Next value is w (already halved); prediction should be close.
  EXPECT_NEAR(p->predict(1), w, 0.3);
}

TEST(AutoRegressive, FallsBackToMeanOnShortHistory) {
  const AutoRegressiveModel model(3);
  auto p = model.make_session(dummy_context());
  p->observe(2.0);
  p->observe(4.0);
  EXPECT_DOUBLE_EQ(p->predict(1), 3.0);
}

TEST(AutoRegressive, NeverNegative) {
  const AutoRegressiveModel model(2);
  auto p = model.make_session(dummy_context());
  for (double w : {5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2, 0.1})
    p->observe(w);
  EXPECT_GE(p->predict(5), 0.0);
}

// ---- Simple cross-session predictors ---------------------------------------

TEST(FeatureMedian, GroupsByFeature) {
  Dataset train;
  auto add = [&train](const std::string& prefix, double level) {
    Session s;
    s.features = {"ISP0", "AS0", "P0", "C0", "S0", prefix};
    s.throughput_mbps = {level, level};
    train.add(s);
  };
  for (int i = 0; i < 10; ++i) add("fast", 9.0);
  for (int i = 0; i < 10; ++i) add("slow", 1.0);

  const FeatureMedianModel model(train, FeatureId::kClientPrefix, "LM-client");
  SessionContext fast = dummy_context();
  fast.features.client_prefix = "fast";
  auto p = model.make_session(fast);
  EXPECT_DOUBLE_EQ(p->predict_initial().value(), 9.0);
  EXPECT_DOUBLE_EQ(p->predict(1), 9.0);
  p->observe(1.0);  // observations don't move a constant predictor
  EXPECT_DOUBLE_EQ(p->predict(1), 9.0);
}

TEST(FeatureMedian, UnknownValueUsesGlobalMedian) {
  Dataset train;
  Session s;
  s.features = {"ISP0", "AS0", "P0", "C0", "S0", "known"};
  s.throughput_mbps = {4.0};
  train.add(s);
  const FeatureMedianModel model(train, FeatureId::kClientPrefix, "LM-client");
  SessionContext unknown = dummy_context();
  unknown.features.client_prefix = "unknown";
  EXPECT_DOUBLE_EQ(model.make_session(unknown)->predict_initial().value(), 4.0);
}

TEST(FeatureMedian, EmptyTrainingThrows) {
  EXPECT_THROW(FeatureMedianModel(Dataset{}, FeatureId::kServer, "x"),
               std::invalid_argument);
}

TEST(GlobalMedian, UsesAllSessions) {
  Dataset train;
  for (double level : {1.0, 2.0, 3.0}) {
    Session s;
    s.features = dummy_context().features;
    s.throughput_mbps = {level};
    train.add(s);
  }
  const GlobalMedianModel model(train);
  EXPECT_DOUBLE_EQ(model.make_session(dummy_context())->predict_initial().value(),
                   2.0);
}

// ---- Oracle -----------------------------------------------------------------

TEST(Oracle, SeesTheFuture) {
  const OracleModel model;
  const std::vector<double> series = {1.0, 2.0, 3.0, 4.0};
  SessionContext context = dummy_context();
  context.oracle_series = &series;
  auto p = model.make_session(context);
  EXPECT_DOUBLE_EQ(p->predict_initial().value(), 1.0);
  EXPECT_DOUBLE_EQ(p->predict(1), 1.0);
  p->observe(1.0);
  EXPECT_DOUBLE_EQ(p->predict(1), 2.0);
  EXPECT_DOUBLE_EQ(p->predict(2), 3.0);
  EXPECT_DOUBLE_EQ(p->predict(99), 4.0);  // clamped to the last epoch
}

TEST(Oracle, RequiresSeries) {
  const OracleModel model;
  EXPECT_THROW(model.make_session(dummy_context()), std::invalid_argument);
}

// ---- Trained models ----------------------------------------------------------

TEST(Ghm, TrainsAndPredicts) {
  const Dataset dataset = tiny_dataset();
  GhmConfig config;
  config.training.num_states = 3;
  config.training.max_iterations = 15;
  config.max_training_sequences = 100;
  const GlobalHmmModel model(dataset, config);
  EXPECT_EQ(model.model().num_states(), 3u);

  auto p = model.make_session(dummy_context());
  const auto initial = p->predict_initial();
  ASSERT_TRUE(initial.has_value());
  EXPECT_GT(*initial, 0.0);
  p->observe(2.0);
  EXPECT_GT(p->predict(1), 0.0);
}

TEST(Ghm, EmptyTrainingThrows) {
  EXPECT_THROW(GlobalHmmModel(Dataset{}), std::invalid_argument);
}

TEST(MlPredictors, SvrAndGbrProduceFiniteForecasts) {
  const Dataset dataset = tiny_dataset();
  MlTrainingConfig training;
  training.max_total_examples = 3000;
  const SvrPredictorModel svr(dataset, training);
  const GbrPredictorModel gbr(dataset, training, GbrtConfig{.num_trees = 20});

  for (const PredictorModel* model :
       std::initializer_list<const PredictorModel*>{&svr, &gbr}) {
    SessionContext context = SessionContext::from(dataset.sessions()[0]);
    auto p = model->make_session(context);
    const auto initial = p->predict_initial();
    ASSERT_TRUE(initial.has_value());
    EXPECT_GE(*initial, 0.0);
    p->observe(1.5);
    p->observe(2.5);
    const double forecast = p->predict(1);
    EXPECT_TRUE(std::isfinite(forecast));
    EXPECT_GE(forecast, 0.0);
  }
}

TEST(MlPredictors, EmptyTrainingThrows) {
  EXPECT_THROW(SvrPredictorModel(Dataset{}), std::invalid_argument);
  EXPECT_THROW(GbrPredictorModel(Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace cs2p
