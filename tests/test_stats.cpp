// Tests for summary statistics (util/stats.h).

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cs2p {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevKnownValues) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138 (n-1).
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> xs = {10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  const std::vector<double> ys = {1.0, 3.0};
  EXPECT_NEAR(coefficient_of_variation(ys), std::sqrt(2.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(Stats, HarmonicMeanKnown) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Stats, HarmonicMeanIgnoresNonPositive) {
  const std::vector<double> xs = {0.0, -1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.0, -3.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, QuantileType7Interpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 2.0);
}

TEST(Stats, EcdfBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(std::vector<double>{}, 1.0), 0.0);
}

TEST(Stats, EcdfPointsAreMonotone) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 3.0};
  const auto points = ecdf_points(xs);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].first, points[i].first);
    EXPECT_LT(points[i - 1].second, points[i].second + 1e-12);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Stats, EcdfAtMatchesEcdf) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> at = {0.0, 1.5, 2.0, 9.0};
  const auto values = ecdf_at(xs, at);
  ASSERT_EQ(values.size(), 4u);
  for (std::size_t i = 0; i < at.size(); ++i)
    EXPECT_DOUBLE_EQ(values[i], ecdf(xs, at[i]));
}

TEST(Stats, CorrelationPerfectAndNone) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(correlation(xs, neg), -1.0, 1e-12);
  const std::vector<double> flat = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
}

TEST(Stats, EntropyFromCounts) {
  const std::vector<std::size_t> even = {5, 5};
  EXPECT_NEAR(entropy_from_counts(even), 1.0, 1e-12);
  const std::vector<std::size_t> single = {7};
  EXPECT_DOUBLE_EQ(entropy_from_counts(single), 0.0);
  const std::vector<std::size_t> empty_counts = {0, 0};
  EXPECT_DOUBLE_EQ(entropy_from_counts(empty_counts), 0.0);
}

TEST(Stats, RelativeInformationGainPerfectPredictor) {
  // X fully determines Y -> RIG = 1.
  const std::vector<int> y = {0, 0, 1, 1, 2, 2};
  const std::vector<int> x = {10, 10, 20, 20, 30, 30};
  EXPECT_NEAR(relative_information_gain(y, x), 1.0, 1e-12);
}

TEST(Stats, RelativeInformationGainIndependent) {
  const std::vector<int> y = {0, 1, 0, 1};
  const std::vector<int> x = {5, 5, 6, 6};
  EXPECT_NEAR(relative_information_gain(y, x), 0.0, 1e-12);
}

TEST(Stats, RelativeInformationGainSizeMismatchThrows) {
  const std::vector<int> y = {0, 1};
  const std::vector<int> x = {0};
  EXPECT_THROW(relative_information_gain(y, x), std::invalid_argument);
}

TEST(Stats, EqualFrequencyBins) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  const auto labels = equal_frequency_bins(xs, 4);
  std::vector<int> counts(4, 0);
  for (int l : labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 4);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (int c : counts) EXPECT_NEAR(c, 25, 1);
}

TEST(Stats, EqualFrequencyBinsRejectsZeroBins) {
  EXPECT_THROW(equal_frequency_bins(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

// Property sweep: quantiles are monotone in q and bounded by extremes.
class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneAndBounded) {
  const std::vector<double> xs = {0.3, 2.7, 1.1, 9.4, 4.2, 0.1, 6.6};
  const double q = GetParam();
  const double value = quantile(xs, q);
  EXPECT_GE(value, 0.1);
  EXPECT_LE(value, 9.4);
  if (q >= 0.05) {
    EXPECT_GE(value + 1e-12, quantile(xs, q - 0.05));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                                           1.0));

}  // namespace
}  // namespace cs2p
