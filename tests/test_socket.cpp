// Tests for the RAII socket layer (net/socket.h).

#include "net/socket.h"

#include <gtest/gtest.h>

#include <thread>

namespace cs2p {
namespace {

TEST(FdHandle, DefaultIsInvalid) {
  const FdHandle fd;
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fd.get(), -1);
}

TEST(FdHandle, MoveTransfersOwnership) {
  auto [listener, port] = listen_loopback(0);
  (void)port;
  const int raw = listener.get();
  FdHandle moved = std::move(listener);
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(listener.valid());  // NOLINT(bugprone-use-after-move): testing it
}

TEST(FdHandle, ReleaseDetaches) {
  auto [listener, port] = listen_loopback(0);
  (void)port;
  const int raw = listener.release();
  EXPECT_FALSE(listener.valid());
  EXPECT_GE(raw, 0);
  FdHandle adopt(raw);  // re-own so it still gets closed
}

TEST(Socket, ListenAssignsEphemeralPort) {
  auto [listener, port] = listen_loopback(0);
  EXPECT_TRUE(listener.valid());
  EXPECT_GT(port, 0);
}

TEST(Socket, ConnectAndEcho) {
  auto [listener, port] = listen_loopback(0);
  std::thread server([&listener] {
    FdHandle conn = accept_connection(listener);
    std::byte buffer[5];
    ASSERT_TRUE(recv_all(conn, buffer));
    send_all(conn, buffer);
  });
  FdHandle client = connect_loopback(port);
  const char message[5] = {'h', 'e', 'l', 'l', 'o'};
  send_all(client, std::as_bytes(std::span(message)));
  std::byte reply[5];
  ASSERT_TRUE(recv_all(client, reply));
  EXPECT_EQ(std::to_integer<char>(reply[0]), 'h');
  EXPECT_EQ(std::to_integer<char>(reply[4]), 'o');
  server.join();
}

TEST(Socket, RecvAllReportsCleanEof) {
  auto [listener, port] = listen_loopback(0);
  std::thread server([&listener] {
    FdHandle conn = accept_connection(listener);
    // Close immediately without sending.
  });
  FdHandle client = connect_loopback(port);
  server.join();
  std::byte buffer[4];
  EXPECT_FALSE(recv_all(client, buffer));
}

TEST(Socket, RecvAllThrowsOnMidMessageEof) {
  auto [listener, port] = listen_loopback(0);
  std::thread server([&listener] {
    FdHandle conn = accept_connection(listener);
    const char partial[2] = {'x', 'y'};
    send_all(conn, std::as_bytes(std::span(partial)));
  });
  FdHandle client = connect_loopback(port);
  server.join();
  std::byte buffer[10];
  EXPECT_THROW(recv_all(client, buffer), std::runtime_error);
}

TEST(Socket, ConnectToClosedPortThrows) {
  // Bind a port, then close it; connecting should fail with ECONNREFUSED.
  std::uint16_t dead_port = 0;
  {
    auto [listener, port] = listen_loopback(0);
    dead_port = port;
  }
  EXPECT_THROW(connect_loopback(dead_port), std::system_error);
}

TEST(Socket, WaitReadableTimesOut) {
  auto [listener, port] = listen_loopback(0);
  (void)port;
  EXPECT_FALSE(wait_readable(listener, 50));  // nothing pending
}

TEST(Socket, WaitReadableSeesPendingConnection) {
  auto [listener, port] = listen_loopback(0);
  FdHandle client = connect_loopback(port);
  EXPECT_TRUE(wait_readable(listener, 1000));
  FdHandle conn = try_accept(listener);
  EXPECT_TRUE(conn.valid());
}

TEST(Socket, TryAcceptReturnsInvalidWhenNothingPending) {
  auto [listener, port] = listen_loopback(0);
  (void)port;
  set_nonblocking(listener);
  const FdHandle conn = try_accept(listener);
  EXPECT_FALSE(conn.valid());
}

}  // namespace
}  // namespace cs2p
