// Tests for the trace-driven player simulator (sim/player.h).

#include "sim/player.h"

#include <gtest/gtest.h>

#include "abr/controllers.h"

namespace cs2p {
namespace {

VideoSpec small_video() {
  VideoSpec video;
  video.bitrates_kbps = {1000.0, 2000.0};
  video.chunk_seconds = 4.0;
  video.num_chunks = 5;
  video.buffer_capacity_seconds = 12.0;
  return video;
}

TEST(Trace, HoldsLastValue) {
  const ThroughputTrace trace({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.at(0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(2), 3.0);
  EXPECT_DOUBLE_EQ(trace.at(99), 3.0);
}

TEST(Trace, RejectsBadInput) {
  EXPECT_THROW(ThroughputTrace({}), std::invalid_argument);
  EXPECT_THROW(ThroughputTrace({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ThroughputTrace({-1.0}), std::invalid_argument);
}

TEST(Player, ConstantTraceHandComputedDynamics) {
  // 2 Mbps trace, fixed 1000 kbps, 4-s chunks: download = 2 s per chunk.
  const VideoSpec video = small_video();
  const ThroughputTrace trace(std::vector<double>(10, 2.0));
  FixedBitrateController fixed(0);
  const PlaybackResult result = simulate_playback(video, trace, fixed, nullptr);

  ASSERT_EQ(result.chunks.size(), 5u);
  EXPECT_DOUBLE_EQ(result.startup_delay_seconds, 2.0);
  for (const auto& chunk : result.chunks) {
    EXPECT_DOUBLE_EQ(chunk.bitrate_kbps, 1000.0);
    EXPECT_DOUBLE_EQ(chunk.download_seconds, 2.0);
    EXPECT_DOUBLE_EQ(chunk.rebuffer_seconds, 0.0);
  }
}

TEST(Player, RebufferWhenDownloadExceedsBuffer) {
  // 0.5 Mbps trace, 2000 kbps chunks of 4 s: download = 16 s each.
  const VideoSpec video = small_video();
  const ThroughputTrace trace(std::vector<double>(10, 0.5));
  FixedBitrateController fixed(1);
  const PlaybackResult result = simulate_playback(video, trace, fixed, nullptr);

  EXPECT_DOUBLE_EQ(result.startup_delay_seconds, 16.0);
  // After chunk 0: buffer = 4 s. Chunk 1 downloads 16 s -> 12 s rebuffer.
  EXPECT_DOUBLE_EQ(result.chunks[1].rebuffer_seconds, 12.0);
  // Steady state: buffer = 4 s before each chunk, same 12 s stall.
  EXPECT_DOUBLE_EQ(result.chunks[4].rebuffer_seconds, 12.0);
}

TEST(Player, BufferCapIsRespected) {
  // Very fast trace: buffer would grow unboundedly without the cap. With a
  // 12-s cap and 4-s chunks, the buffer before each decision never exceeds
  // the cap; verify indirectly: after many chunks there is still no stall
  // and downloads are fast.
  VideoSpec video = small_video();
  video.num_chunks = 30;
  const ThroughputTrace trace(std::vector<double>(40, 100.0));
  FixedBitrateController fixed(1);
  const PlaybackResult result = simulate_playback(video, trace, fixed, nullptr);
  for (const auto& chunk : result.chunks)
    EXPECT_DOUBLE_EQ(chunk.rebuffer_seconds, 0.0);
}

TEST(Player, ChunkIndexedThroughput) {
  // Chunk k must see trace epoch k.
  const VideoSpec video = small_video();
  const ThroughputTrace trace({1.0, 2.0, 4.0, 8.0, 16.0});
  FixedBitrateController fixed(0);
  const PlaybackResult result = simulate_playback(video, trace, fixed, nullptr);
  for (std::size_t k = 0; k < result.chunks.size(); ++k)
    EXPECT_DOUBLE_EQ(result.chunks[k].actual_throughput_mbps, trace.at(k));
}

TEST(Player, PredictorIsFedMeasurements) {
  // A spy predictor records what the player reports.
  class Spy final : public SessionPredictor {
   public:
    std::optional<double> predict_initial() const override { return 1.0; }
    double predict(unsigned) const override { return 1.0; }
    void observe(double w) override { seen.push_back(w); }
    std::vector<double> seen;
  };
  const VideoSpec video = small_video();
  const ThroughputTrace trace({1.0, 2.0, 3.0, 4.0, 5.0});
  FixedBitrateController fixed(0);
  Spy spy;
  simulate_playback(video, trace, fixed, &spy);
  ASSERT_EQ(spy.seen.size(), video.num_chunks);
  EXPECT_DOUBLE_EQ(spy.seen[0], 1.0);
  EXPECT_DOUBLE_EQ(spy.seen[4], 5.0);
}

TEST(Player, RecordsPredictions) {
  class Flat final : public SessionPredictor {
   public:
    std::optional<double> predict_initial() const override { return 7.0; }
    double predict(unsigned) const override { return 3.0; }
    void observe(double) override {}
  };
  const VideoSpec video = small_video();
  const ThroughputTrace trace(std::vector<double>(5, 2.0));
  FixedBitrateController fixed(0);
  Flat predictor;
  const PlaybackResult result = simulate_playback(video, trace, fixed, &predictor);
  EXPECT_DOUBLE_EQ(result.chunks[0].predicted_throughput_mbps, 7.0);
  EXPECT_DOUBLE_EQ(result.chunks[1].predicted_throughput_mbps, 3.0);
}

TEST(Player, MalformedSpecThrows) {
  const ThroughputTrace trace({1.0});
  FixedBitrateController fixed(0);
  VideoSpec video = small_video();
  video.bitrates_kbps.clear();
  EXPECT_THROW(simulate_playback(video, trace, fixed, nullptr),
               std::invalid_argument);
  video = small_video();
  video.num_chunks = 0;
  EXPECT_THROW(simulate_playback(video, trace, fixed, nullptr),
               std::invalid_argument);
}

TEST(Player, ControllerChoosingOutOfRangeThrows) {
  class Rogue final : public AbrController {
   public:
    std::string name() const override { return "rogue"; }
    std::size_t select_bitrate(const AbrState&, const VideoSpec&) override {
      return 99;
    }
  };
  const ThroughputTrace trace({1.0});
  Rogue rogue;
  EXPECT_THROW(simulate_playback(small_video(), trace, rogue, nullptr),
               std::out_of_range);
}

}  // namespace
}  // namespace cs2p
