// Tests for gradient boosted regression trees (ml/gbrt.h).

#include "ml/gbrt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cs2p {
namespace {

TEST(RegressionTree, FitsStepFunction) {
  std::vector<Vec> rows;
  std::vector<double> y;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    rows.push_back({x});
    y.push_back(x < 5.0 ? 1.0 : 3.0);
  }
  std::vector<std::size_t> idx(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) idx[i] = i;

  RegressionTree tree;
  tree.fit(rows, y, idx, /*max_depth=*/2, /*min_samples_leaf=*/2);
  EXPECT_NEAR(tree.predict(Vec{2.0}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(Vec{8.0}), 3.0, 1e-9);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  std::vector<Vec> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {1.0, 2.0, 3.0};
  std::vector<std::size_t> idx = {0, 1, 2};
  RegressionTree tree;
  tree.fit(rows, y, idx, 5, /*min_samples_leaf=*/3);
  // Cannot split 3 samples into two leaves of >= 3: stays a stump.
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict(Vec{1.0}), 2.0, 1e-12);
}

TEST(RegressionTree, NoSplitOnConstantFeature) {
  std::vector<Vec> rows = {{1.0}, {1.0}, {1.0}, {1.0}};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  std::vector<std::size_t> idx = {0, 1, 2, 3};
  RegressionTree tree;
  tree.fit(rows, y, idx, 3, 1);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RegressionTree, EmptyIndicesThrows) {
  RegressionTree tree;
  std::vector<Vec> rows = {{1.0}};
  std::vector<double> y = {1.0};
  EXPECT_THROW(tree.fit(rows, y, {}, 2, 1), std::invalid_argument);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  const RegressionTree tree;
  EXPECT_THROW(tree.predict(Vec{1.0}), std::logic_error);
}

TEST(Gbrt, FitsNonlinearFunction) {
  std::vector<Vec> rows;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 6.28);
    rows.push_back({x});
    y.push_back(std::sin(x));
  }
  GradientBoostedTrees gbrt;
  GbrtConfig config;
  config.num_trees = 120;
  config.max_depth = 3;
  config.subsample = 1.0;
  gbrt.fit(rows, y, config);
  for (double x : {0.5, 1.5, 3.0, 5.0}) {
    EXPECT_NEAR(gbrt.predict(Vec{x}), std::sin(x), 0.15) << "x=" << x;
  }
}

TEST(Gbrt, UsesInteractionFeatures) {
  // Nested interaction: the second feature only matters when the first is
  // set. (Pure XOR is famously unsplittable for greedy CART — zero marginal
  // gain on either feature — so we use an interaction with marginal signal.)
  std::vector<Vec> rows;
  std::vector<double> y;
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b)
      for (int rep = 0; rep < 25; ++rep) {
        rows.push_back({static_cast<double>(a), static_cast<double>(b)});
        y.push_back(a == 0 ? 0.0 : (b == 0 ? 1.0 : 3.0));
      }
  GradientBoostedTrees gbrt;
  GbrtConfig config;
  config.num_trees = 80;
  config.max_depth = 2;
  config.min_samples_leaf = 2;
  config.subsample = 1.0;
  gbrt.fit(rows, y, config);
  EXPECT_NEAR(gbrt.predict(Vec{0.0, 0.0}), 0.0, 0.1);
  EXPECT_NEAR(gbrt.predict(Vec{0.0, 1.0}), 0.0, 0.1);
  EXPECT_NEAR(gbrt.predict(Vec{1.0, 0.0}), 1.0, 0.1);
  EXPECT_NEAR(gbrt.predict(Vec{1.0, 1.0}), 3.0, 0.1);
}

TEST(Gbrt, MoreTreesReduceTrainingError) {
  std::vector<Vec> rows;
  std::vector<double> y;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    rows.push_back({x});
    y.push_back(x * x / 10.0);
  }
  auto training_mse = [&](int trees) {
    GradientBoostedTrees gbrt;
    GbrtConfig config;
    config.num_trees = trees;
    config.subsample = 1.0;
    gbrt.fit(rows, y, config);
    double mse = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double diff = gbrt.predict(rows[i]) - y[i];
      mse += diff * diff;
    }
    return mse / static_cast<double>(rows.size());
  };
  EXPECT_LT(training_mse(60), training_mse(5));
}

TEST(Gbrt, PredictBeforeFitThrows) {
  const GradientBoostedTrees gbrt;
  EXPECT_THROW(gbrt.predict(Vec{1.0}), std::logic_error);
}

TEST(Gbrt, ErrorPaths) {
  GradientBoostedTrees gbrt;
  EXPECT_THROW(gbrt.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gbrt.fit({{1.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(gbrt.fit({{1.0}, {1.0, 2.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Gbrt, DeterministicForFixedSeed) {
  std::vector<Vec> rows;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.uniform(0.0, 1.0)});
    y.push_back(rows.back()[0] * 2.0);
  }
  GradientBoostedTrees a, b;
  a.fit(rows, y);
  b.fit(rows, y);
  EXPECT_DOUBLE_EQ(a.predict(Vec{0.3}), b.predict(Vec{0.3}));
}

TEST(Gbrt, ZeroTreesPredictsBase) {
  std::vector<Vec> rows = {{1.0}, {2.0}};
  std::vector<double> y = {1.0, 3.0};
  GradientBoostedTrees gbrt;
  GbrtConfig config;
  config.num_trees = 0;
  gbrt.fit(rows, y, config);
  EXPECT_DOUBLE_EQ(gbrt.predict(Vec{5.0}), 2.0);  // mean of targets
}

}  // namespace
}  // namespace cs2p
