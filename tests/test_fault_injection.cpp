// Fault-injection harness tests (net/fault_injection.h) plus the chaos soak
// and killed-server scenarios from the fault-tolerance acceptance criteria:
// a simulated player must finish its stream through a faulty transport with
// zero exceptions escaping into the player loop, and a predictor that loses
// the service mid-stream must finish on the local harmonic-mean fallback.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/fault_injection.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/transport.h"
#include "qoe/qoe.h"
#include "sim/player.h"

namespace cs2p {
namespace {

SessionFeatures features() {
  return {"ISP0", "AS0", "P0", "C0", "S0", "Pfx0"};
}

/// Deterministic in-process model: initial = 2.0, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 0.0;
    };
    return std::make_unique<S>();
  }
};

/// A connected loopback pair: `peer` is the raw accepted socket, `transport`
/// the client side (optionally wrapped by the test).
struct LoopbackPair {
  FdHandle listener;
  FdHandle peer;
  std::unique_ptr<Transport> transport;
};

LoopbackPair make_pair_with(FaultSpec spec, std::uint64_t seed,
                            std::shared_ptr<FaultCounters> counters) {
  LoopbackPair pair;
  auto [listener, port] = listen_loopback(0);
  pair.listener = std::move(listener);
  FdHandle client = connect_loopback(port);
  pair.peer = accept_connection(pair.listener);
  pair.transport = std::make_unique<FaultInjectingTransport>(
      std::make_unique<SocketTransport>(std::move(client)), spec, seed,
      std::move(counters));
  return pair;
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(FaultInjection, TransparentAtZeroFaults) {
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(FaultSpec{}, 1, counters);

  const auto out = bytes_of("hello across the fault layer");
  pair.transport->send(out);
  std::vector<std::byte> got(out.size());
  ASSERT_TRUE(recv_all(pair.peer, got));
  EXPECT_EQ(got, out);

  send_all(pair.peer, out);
  std::vector<std::byte> back(out.size());
  ASSERT_TRUE(pair.transport->recv(back));
  EXPECT_EQ(back, out);

  EXPECT_EQ(counters->sends.load(), 1u);
  EXPECT_EQ(counters->recvs.load(), 1u);
  EXPECT_EQ(counters->total_faults(), 0u);
}

TEST(FaultInjection, ChunkedIoDeliversIntactBytes) {
  FaultSpec spec;
  spec.max_io_chunk = 3;
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(spec, 2, counters);

  std::vector<std::byte> out(64);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::byte>(i * 7 + 1);
  pair.transport->send(out);
  std::vector<std::byte> got(out.size());
  ASSERT_TRUE(recv_all(pair.peer, got));
  EXPECT_EQ(got, out);

  send_all(pair.peer, out);
  std::vector<std::byte> back(out.size());
  ASSERT_TRUE(pair.transport->recv(back));
  EXPECT_EQ(back, out);
  EXPECT_EQ(counters->total_faults(), 0u);
}

TEST(FaultInjection, ResetOnSendThrowsConnectionError) {
  FaultSpec spec;
  spec.reset_on_send = 1.0;
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(spec, 3, counters);
  const auto out = bytes_of("doomed");
  EXPECT_THROW(pair.transport->send(out), ConnectionError);
  EXPECT_GE(counters->resets_injected.load(), 1u);
  // The inner stream really was torn down: the peer sees EOF.
  std::vector<std::byte> got(1);
  EXPECT_FALSE(recv_all(pair.peer, got));
}

TEST(FaultInjection, ResetOnRecvThrowsConnectionError) {
  FaultSpec spec;
  spec.reset_on_recv = 1.0;
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(spec, 4, counters);
  std::vector<std::byte> buffer(8);
  EXPECT_THROW((void)pair.transport->recv(buffer), ConnectionError);
  EXPECT_GE(counters->resets_injected.load(), 1u);
}

TEST(FaultInjection, CorruptionFlipsExactlyOneByte) {
  FaultSpec spec;
  spec.corrupt_on_send = 1.0;
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(spec, 5, counters);

  const auto out = bytes_of("a payload of thirty-two bytes!!!");
  pair.transport->send(out);
  std::vector<std::byte> got(out.size());
  ASSERT_TRUE(recv_all(pair.peer, got));
  std::size_t differing = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (got[i] != out[i]) ++differing;
  EXPECT_EQ(differing, 1u);
  EXPECT_EQ(counters->corruptions_injected.load(), 1u);
}

TEST(FaultInjection, InjectedDelayIsObservable) {
  FaultSpec spec;
  spec.delay = 1.0;
  spec.delay_ms = 30;
  auto counters = std::make_shared<FaultCounters>();
  auto pair = make_pair_with(spec, 6, counters);
  const auto out = bytes_of("slow");
  const auto start = std::chrono::steady_clock::now();
  pair.transport->send(out);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
  EXPECT_GE(counters->delays_injected.load(), 1u);
}

TEST(FaultInjection, ConnectorCanRefuseConnects) {
  auto [listener, port] = listen_loopback(0);
  FaultSpec spec;
  spec.refuse_connect = 1.0;
  auto counters = std::make_shared<FaultCounters>();
  auto factory = fault_injecting_connector(loopback_connector(port), spec,
                                           7, counters);
  EXPECT_THROW((void)factory(), ConnectionError);
  EXPECT_THROW((void)factory(), ConnectionError);
  EXPECT_EQ(counters->connects_refused.load(), 2u);
}

TEST(FaultInjection, SameSeedSameFaultSchedule) {
  FaultSpec spec;
  spec.reset_on_send = 0.3;
  const auto first_reset_index = [&spec](std::uint64_t seed) {
    auto pair = make_pair_with(spec, seed, nullptr);
    const auto out = bytes_of("x");
    for (int i = 0; i < 100; ++i) {
      try {
        pair.transport->send(out);
      } catch (const ConnectionError&) {
        return i;
      }
    }
    return -1;
  };
  EXPECT_EQ(first_reset_index(99), first_reset_index(99));
  EXPECT_NE(first_reset_index(99), -1);
}

// -- Scenario tests ---------------------------------------------------------

/// Rate-based controller exercising the predictor on every chunk: picks the
/// highest rung below the one-step forecast.
class PredictorRateController final : public AbrController {
 public:
  std::string name() const override { return "PredRate"; }
  std::size_t select_bitrate(const AbrState& state, const VideoSpec& video) override {
    double forecast_kbps = 0.0;
    if (state.predictor != nullptr)
      forecast_kbps = state.predictor->predict(1) * 1000.0;
    std::size_t choice = 0;
    for (std::size_t i = 0; i < video.bitrates_kbps.size(); ++i)
      if (video.bitrates_kbps[i] <= forecast_kbps) choice = i;
    return choice;
  }
};

/// Chaos soak: 200 chunks through a fault-injecting transport with ~10%
/// aggregate fault probability per operation. Every chunk must complete with
/// no exception escaping into the player loop, the degraded flag must be
/// consistent, and the server must not leak session-table entries.
TEST(FaultInjection, ChaosSoak200Chunks) {
  ServerConfig server_config;
  server_config.session_ttl_ms = 300;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), server_config);

  FaultSpec spec;
  spec.refuse_connect = 0.05;
  spec.reset_on_send = 0.04;
  spec.reset_on_recv = 0.04;
  spec.corrupt_on_send = 0.02;
  spec.delay = 0.05;
  spec.delay_ms = 1;
  spec.max_io_chunk = 5;
  auto counters = std::make_shared<FaultCounters>();
  auto connector = fault_injecting_connector(
      loopback_connector(server.port(), TransportDeadlines{500, 500}), spec,
      0xC52B5EEDULL, counters);

  ClientConfig client_config;
  client_config.recv_timeout_ms = 500;
  client_config.send_timeout_ms = 500;
  client_config.max_retries = 4;
  client_config.backoff_initial_ms = 2;
  client_config.backoff_max_ms = 20;
  PredictionClient client(std::move(connector), client_config);

  VideoSpec video;
  video.num_chunks = 200;
  std::vector<double> epochs;
  epochs.reserve(video.num_chunks);
  for (std::size_t k = 0; k < video.num_chunks; ++k)
    epochs.push_back(0.8 + 0.6 * static_cast<double>(k % 5));
  ThroughputTrace trace(std::move(epochs));

  PlaybackResult result;
  bool predictor_degraded = false;
  {
    RemoteSessionPredictor predictor(client, features(), 12.0);
    PredictorRateController controller;
    result = simulate_playback(video, trace, controller, &predictor);
    predictor_degraded = predictor.degraded();
  }

  ASSERT_EQ(result.chunks.size(), video.num_chunks);
  EXPECT_EQ(result.predictor_degraded, predictor_degraded);
  // The run genuinely exercised the fault paths.
  EXPECT_GT(counters->total_faults(), 0u);
  EXPECT_GT(client.retries() + client.reconnects(), 0u);

  // No session-table leaks: whether the session ended with BYE or was
  // abandoned on degradation, the table must drain (TTL eviction covers the
  // abandoned case).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.session_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(FaultInjection, KilledServerMidStreamFallsBackToHarmonicMean) {
  auto server = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>());

  ClientConfig config;
  config.recv_timeout_ms = 200;
  config.send_timeout_ms = 200;
  config.max_retries = 1;
  config.backoff_initial_ms = 1;
  PredictionClient client(server->port(), config);
  RemoteSessionPredictor predictor(client, features(), 8.0);

  predictor.observe(2.0);
  predictor.observe(4.0);
  EXPECT_FALSE(predictor.degraded());

  server->stop();
  server.reset();

  // The next observation exhausts the retry budget; it must degrade, not
  // throw, and subsequent forecasts are the harmonic mean of the history.
  EXPECT_NO_THROW(predictor.observe(6.0));
  EXPECT_TRUE(predictor.degraded());
  EXPECT_GE(predictor.remote_failures(), 1u);
  const double harmonic_mean = 3.0 / (1.0 / 2.0 + 1.0 / 4.0 + 1.0 / 6.0);
  EXPECT_NEAR(predictor.predict(1), harmonic_mean, 1e-9);
  EXPECT_NEAR(predictor.predict(4), harmonic_mean, 1e-9);
  EXPECT_GE(predictor.fallback_predictions(), 2u);
}

/// Delegating predictor that kills the server after `kill_after` observed
/// chunks — drives the killed-server playback scenario end to end.
class KillServerAt final : public SessionPredictor {
 public:
  KillServerAt(RemoteSessionPredictor& inner, PredictionServer& server,
               int kill_after)
      : inner_(&inner), server_(&server), kill_after_(kill_after) {}

  std::optional<double> predict_initial() const override {
    return inner_->predict_initial();
  }
  double predict(unsigned steps) const override { return inner_->predict(steps); }
  void observe(double w) override {
    if (++observed_ == kill_after_) server_->stop();
    inner_->observe(w);
  }
  bool degraded() const override { return inner_->degraded(); }

 private:
  RemoteSessionPredictor* inner_;
  PredictionServer* server_;
  int kill_after_;
  int observed_ = 0;
};

TEST(FaultInjection, PlaybackCompletesWhenServerDiesMidStream) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  ClientConfig config;
  config.recv_timeout_ms = 200;
  config.send_timeout_ms = 200;
  config.max_retries = 1;
  config.backoff_initial_ms = 1;
  PredictionClient client(server.port(), config);
  RemoteSessionPredictor remote(client, features(), 15.0);
  KillServerAt predictor(remote, server, 10);

  VideoSpec video;
  video.num_chunks = 30;
  std::vector<double> epochs(video.num_chunks, 2.5);
  ThroughputTrace trace(std::move(epochs));
  PredictorRateController controller;

  const PlaybackResult result =
      simulate_playback(video, trace, controller, &predictor);
  ASSERT_EQ(result.chunks.size(), video.num_chunks);
  EXPECT_TRUE(result.predictor_degraded);
  EXPECT_TRUE(remote.degraded());
  EXPECT_GE(remote.fallback_predictions(), 1u);
  // The degraded run still yields a scoreable QoE.
  const QoeBreakdown qoe = compute_qoe(result);
  EXPECT_GT(qoe.avg_bitrate_kbps, 0.0);
}

}  // namespace
}  // namespace cs2p
