// Connection-churn soak for the sharded serving core (net/server.h).
//
// Built for the TSan CI job: many short-lived client threads churn
// connections over a small fixed worker pool while the model hot-swaps and a
// scraper audits the requests >= replies invariant. Locally (no sanitizer)
// it doubles as a quick stress test. Iteration counts are deliberately
// modest so the soak stays tractable under TSan on small machines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/fault_injection.h"
#include "net/server.h"
#include "net/transport.h"
#include "predictors/predictor.h"

namespace cs2p {
namespace {

/// Deterministic in-process model: initial = 2.0, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 0.0;
    };
    return std::make_unique<S>();
  }
};

SessionFeatures features() {
  return {"ISP0", "AS0", "P0", "C0", "S0", "Pfx0"};
}

/// Value of the series rendered exactly as `key`, or NaN.
double series_value(const std::string& exposition, const std::string& key) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.size() > key.size() + 1 && line.compare(0, key.size(), key) == 0 &&
        line[key.size()] == ' ')
      return std::stod(line.substr(key.size() + 1));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TEST(ServerChurnSoak, SixtyFourClientsOverFourWorkers) {
  ServerConfig config;
  config.io_threads = 4;
  config.session_shards = 8;
  config.max_connections = 256;
  config.session_ttl_ms = 100;  // abandoned sessions get reaped mid-soak
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  ASSERT_EQ(server.config().io_threads, 4u);
  ASSERT_EQ(server.config().session_shards, 8u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> byes{0};
  std::atomic<std::uint64_t> abandons{0};

  // Retrains land mid-flight the whole time: sessions must keep the model
  // that created them (RCU pin) while new sessions pick up the replacement.
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.swap_model(std::make_shared<EchoPlusOneModel>());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Continuous STATS audit: a reply can never outrun its request.
  std::thread scraper([&] {
    try {
      PredictionClient client(server.port());
      while (!stop.load(std::memory_order_relaxed)) {
        const StatsResponse stats = client.stats();
        const double requests =
            series_value(stats.exposition, "cs2p_server_requests_total");
        const double replies =
            series_value(stats.exposition, "cs2p_server_replies_total");
        if (!(requests >= replies)) ++failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    } catch (const std::exception&) {
      ++failures;
    }
  });

  constexpr int kClients = 64;
  constexpr int kRoundsPerClient = 6;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, &byes, &abandons, c] {
      try {
        for (int round = 0; round < kRoundsPerClient; ++round) {
          // Fresh connection every round — this is the churn under test.
          PredictionClient client(server.port());
          const SessionResponse session =
              client.hello(features(), static_cast<double>(c % 24));
          for (int i = 0; i < 4; ++i) {
            const double sample = 1.0 + (c + round + i) % 9;
            if (client.observe(session.session_id, sample) != sample + 1.0) {
              ++failures;
              return;
            }
          }
          if (client.predict(session.session_id, 2) <= 0.0) ++failures;
          // Half the rounds close politely, half vanish without BYE and
          // leave their session for the TTL sweep.
          if ((c + round) % 2 == 0) {
            client.bye(session.session_id);
            byes.fetch_add(1, std::memory_order_relaxed);
          } else {
            abandons.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  // A slow-reader cohort rides along: clients that sleep before every recv
  // drain replies slower than the server produces them, exercising the
  // write-backpressure path (bounded queues, read throttling) concurrently
  // with the fast churn above — under TSan this is the mixed-cohort race.
  constexpr int kSlowClients = 8;
  constexpr int kSlowRounds = 2;
  std::vector<std::thread> slow_clients;
  for (int c = 0; c < kSlowClients; ++c) {
    slow_clients.emplace_back([&server, &failures, &byes, c] {
      try {
        for (int round = 0; round < kSlowRounds; ++round) {
          PredictionClient client(
              slow_client_connector(loopback_connector(server.port()),
                                    /*recv_delay_ms=*/3));
          const SessionResponse session =
              client.hello(features(), static_cast<double>(c % 24));
          for (int i = 0; i < 2; ++i) {
            const double sample = 1.0 + (c + round + i) % 9;
            if (client.observe(session.session_id, sample) != sample + 1.0) {
              ++failures;
              return;
            }
          }
          client.bye(session.session_id);
          byes.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }

  for (auto& t : clients) t.join();
  for (auto& t : slow_clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  scraper.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(byes.load(), 0u);
  EXPECT_GT(abandons.load(), 0u);
  // hello + 4 observes + predict per round, plus byes and scrapes.
  EXPECT_GE(server.requests_handled(),
            static_cast<std::uint64_t>(kClients * kRoundsPerClient * 6));
  EXPECT_GE(server.requests_handled(), server.replies_sent());

  // The abandoned half drains via TTL once the churn stops.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.session_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_GE(server.sessions_evicted(), 1u);
}

}  // namespace
}  // namespace cs2p
