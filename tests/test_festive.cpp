// Tests for the FESTIVE-style controller (abr/festive.h).

#include "abr/festive.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

VideoSpec ladder_video() {
  VideoSpec video;
  video.bitrates_kbps = {350.0, 600.0, 1000.0, 2000.0, 3000.0};
  return video;
}

AbrState state_at(std::size_t chunk, double buffer, int last_index,
                  double last_throughput) {
  AbrState state;
  state.chunk_index = chunk;
  state.buffer_seconds = buffer;
  state.last_bitrate_index = last_index;
  state.last_throughput_mbps = last_throughput;
  return state;
}

TEST(Festive, ColdStartIsLowestRung) {
  FestiveController festive;
  EXPECT_EQ(festive.select_bitrate(state_at(0, 0.0, -1, 0.0), ladder_video()), 0u);
}

TEST(Festive, ClimbsOnlyAfterPatience) {
  FestiveConfig config;
  config.patience = 3;
  config.stability_weight = 0.0;  // isolate the patience mechanism
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  // Throughput easily supports a higher rung every chunk.
  std::size_t choice = 0;
  for (unsigned k = 1; k <= 2; ++k) {
    choice = festive.select_bitrate(state_at(k, 10.0, 1, 5.0), video);
    EXPECT_EQ(choice, 1u) << "climbed before patience at chunk " << k;
  }
  choice = festive.select_bitrate(state_at(3, 10.0, 1, 5.0), video);
  EXPECT_EQ(choice, 2u);  // one rung, not a jump to the top
}

TEST(Festive, OneRungAtATimeUpward) {
  FestiveConfig config;
  config.patience = 1;
  config.stability_weight = 0.0;
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  const std::size_t choice = festive.select_bitrate(state_at(1, 10.0, 0, 50.0), video);
  EXPECT_EQ(choice, 1u);
}

TEST(Festive, DropsImmediatelyOnCollapse) {
  FestiveController festive;
  const VideoSpec video = ladder_video();
  const std::size_t choice =
      festive.select_bitrate(state_at(1, 10.0, 4, 0.3), video);
  EXPECT_EQ(choice, 3u);  // one rung down right away
}

TEST(Festive, HoldsWhenEstimateMatchesCurrent) {
  FestiveConfig config;
  config.safety_factor = 1.0;
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  // 1.05 Mbps harmonic estimate -> target rung 1000 kbps == current.
  const std::size_t choice =
      festive.select_bitrate(state_at(1, 10.0, 2, 1.05), video);
  EXPECT_EQ(choice, 2u);
}

TEST(Festive, StabilityWeightBlocksMarginalClimbs) {
  FestiveConfig config;
  config.patience = 1;
  config.stability_weight = 10.0;  // absurdly high: never worth switching up
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  for (unsigned k = 1; k < 6; ++k) {
    EXPECT_EQ(festive.select_bitrate(state_at(k, 10.0, 1, 9.0), video), 1u);
  }
}

TEST(Festive, ResetClearsState) {
  FestiveConfig config;
  config.patience = 2;
  config.stability_weight = 0.0;
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  festive.select_bitrate(state_at(1, 10.0, 1, 5.0), video);  // streak 1
  festive.reset();
  // After reset the streak starts over: still no climb on the next call.
  EXPECT_EQ(festive.select_bitrate(state_at(1, 10.0, 1, 5.0), video), 1u);
}

TEST(Festive, HarmonicWindowAbsorbsOneOutlier) {
  FestiveConfig config;
  config.patience = 1;
  config.stability_weight = 0.0;
  config.window = 5;
  FestiveController festive(config);
  const VideoSpec video = ladder_video();
  // Build a history of strong throughput at the top rung.
  std::size_t choice = 4;
  for (unsigned k = 1; k <= 4; ++k)
    choice = festive.select_bitrate(state_at(k, 20.0, 4, 5.0), video);
  EXPECT_EQ(choice, 4u);
  // One deep outlier: the harmonic mean drops sharply (that is HM's known
  // sensitivity to small samples), so FESTIVE steps down one rung but the
  // window keeps it from collapsing to the bottom.
  choice = festive.select_bitrate(state_at(5, 20.0, 4, 0.5), video);
  EXPECT_EQ(choice, 3u);
}

TEST(Festive, EndToEndPlaybackIsStable) {
  // On a steady 2.4-Mbps trace FESTIVE must converge to 2000 kbps and stay.
  FestiveController festive;
  VideoSpec video = ladder_video();
  video.chunk_seconds = 6.0;
  video.num_chunks = 30;
  video.buffer_capacity_seconds = 30.0;
  const ThroughputTrace trace(std::vector<double>(30, 2.4));
  const PlaybackResult result = simulate_playback(video, trace, festive, nullptr);
  EXPECT_DOUBLE_EQ(result.chunks.back().bitrate_kbps, 2000.0);
  std::size_t switches = 0;
  for (std::size_t k = 1; k < result.chunks.size(); ++k)
    if (result.chunks[k].bitrate_kbps != result.chunks[k - 1].bitrate_kbps)
      ++switches;
  EXPECT_LE(switches, 4u);  // the ramp up, then stable
}

}  // namespace
}  // namespace cs2p
