// Compile-and-link check for the umbrella header: everything the README
// advertises must be reachable through a single include.

#include "cs2p.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

TEST(Umbrella, AllPublicTypesVisible) {
  // One value of each major family proves the header pulls everything in.
  [[maybe_unused]] SyntheticConfig synthetic;
  [[maybe_unused]] Cs2pConfig engine;
  [[maybe_unused]] BaumWelchConfig hmm;
  [[maybe_unused]] VideoSpec video;
  [[maybe_unused]] QoeParams qoe;
  [[maybe_unused]] MpcConfig mpc;
  [[maybe_unused]] FestiveConfig festive;
  [[maybe_unused]] EvaluationOptions accuracy;
  [[maybe_unused]] AbrEvaluationOptions playback;
  [[maybe_unused]] HelloRequest hello;
  SUCCEED();
}

TEST(Umbrella, SmallEndToEndPath) {
  SyntheticConfig config;
  config.num_sessions = 300;
  config.num_isps = 2;
  config.num_provinces = 2;
  config.cities_per_province = 2;
  config.num_servers = 3;
  Dataset dataset = generate_synthetic_dataset(config);
  const HarmonicMeanModel hm;
  const PredictorEvaluation eval = evaluate_predictor(hm, dataset);
  EXPECT_GT(eval.midstream_sessions.size(), 0u);
}

}  // namespace
}  // namespace cs2p
