// Tests for the CS2P prediction engine (core/engine.h).

#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>

#include "dataset/synthetic.h"

namespace cs2p {
namespace {

SyntheticConfig engine_world() {
  SyntheticConfig config;
  config.num_isps = 3;
  config.num_provinces = 3;
  config.cities_per_province = 2;
  config.num_servers = 4;
  config.prefixes_per_isp_city = 1;
  config.num_sessions = 2500;
  config.seed = 31;
  return config;
}

Cs2pConfig fast_config() {
  Cs2pConfig config;
  config.hmm.num_states = 3;
  config.hmm.max_iterations = 12;
  config.selector.min_cluster_size = 10;
  config.max_sequences_per_cluster = 25;
  config.max_global_sequences = 150;
  return config;
}

TEST(Engine, RejectsEmptyTraining) {
  EXPECT_THROW(Cs2pEngine(Dataset{}, fast_config()), std::invalid_argument);
}

TEST(Engine, RejectsNaNAndNegativeTrainingSamples) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), -0.5}) {
    Dataset dataset = generate_synthetic_dataset(engine_world());
    Session poisoned;
    poisoned.id = 999999;
    poisoned.day = 0;
    poisoned.start_hour = 12.0;
    poisoned.features = dataset.sessions()[0].features;
    poisoned.throughput_mbps = {1.0, bad, 2.0};
    dataset.add(poisoned);
    EXPECT_THROW(Cs2pEngine(std::move(dataset), fast_config()),
                 std::invalid_argument);
  }
}

TEST(Engine, ServesValidSessionModels) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), fast_config());

  std::size_t checked = 0;
  for (const auto& s : test.sessions()) {
    if (++checked > 100) break;
    const SessionModelRef ref = engine.session_model(s.features, s.start_hour);
    ASSERT_NE(ref.hmm, nullptr);
    EXPECT_NO_THROW(ref.hmm->validate(1e-3));
    EXPECT_GT(ref.initial_prediction, 0.0);
    if (!ref.used_global_model) {
      EXPECT_GE(ref.cluster_size, fast_config().selector.min_cluster_size);
      EXPECT_FALSE(ref.cluster_label.empty());
    }
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.sessions_served, 100u);
  // Most sessions should land on a cluster (the paper reports ~4% fallback).
  EXPECT_LT(static_cast<double>(stats.global_fallbacks) / 100.0, 0.5);
}

TEST(Engine, ClusterModelsAreCached) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), fast_config());

  const auto& probe = test.sessions()[0];
  const SessionModelRef a = engine.session_model(probe.features, probe.start_hour);
  const SessionModelRef b = engine.session_model(probe.features, probe.start_hour);
  EXPECT_EQ(a.hmm, b.hmm);  // same pointer = cached, no retraining
  const EngineStats stats = engine.stats();
  EXPECT_LE(stats.clusters_trained, 1u);
}

TEST(Engine, GlobalFallbackForAlienSessions) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), fast_config());
  SessionFeatures alien = {"ISP-x", "AS-x", "P-x", "C-x", "S-x", "Pfx-x"};
  const SessionModelRef ref = engine.session_model(alien, 12.0);
  EXPECT_TRUE(ref.used_global_model);
  EXPECT_EQ(ref.hmm, &engine.global_hmm());
  EXPECT_DOUBLE_EQ(ref.initial_prediction, engine.global_initial());
}

TEST(Engine, ModelFootprintUnder5KB) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), fast_config());
  const auto& probe = test.sessions()[0];
  const SessionModelRef ref = engine.session_model(probe.features, probe.start_hour);
  EXPECT_LT(ref.hmm->byte_size(), 5u * 1024u);  // §5.3 claim
  EXPECT_LT(serialize_hmm(*ref.hmm).size(), 5u * 1024u);
}

TEST(Engine, WarmUpPreTrainsClusters) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), fast_config());
  const std::size_t trained = engine.warm_up(/*max_clusters=*/5);
  EXPECT_GE(trained, 1u);
  EXPECT_LE(trained, 5u);
  // A subsequent full warm-up trains the rest; second call is a no-op.
  const std::size_t rest = engine.warm_up();
  const std::size_t again = engine.warm_up();
  EXPECT_EQ(again, 0u);
  (void)rest;
}

TEST(Engine, MeanInitialAblation) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  Cs2pConfig median_config = fast_config();
  Cs2pConfig mean_config = fast_config();
  mean_config.median_initial = false;
  const Cs2pEngine median_engine(train, median_config);
  const Cs2pEngine mean_engine(train, mean_config);
  EXPECT_NE(median_engine.global_initial(), mean_engine.global_initial());
}

TEST(PredictorModelAdapter, ImplementsTheSharedInterface) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pPredictorModel model(std::move(train), fast_config());
  EXPECT_EQ(model.name(), "CS2P");

  const auto& probe = test.sessions()[0];
  auto predictor = model.make_session(SessionContext::from(probe));
  const auto initial = predictor->predict_initial();
  ASSERT_TRUE(initial.has_value());
  EXPECT_GT(*initial, 0.0);
  // Cold predict (before any observation) returns the initial value.
  EXPECT_DOUBLE_EQ(predictor->predict(1), *initial);
  predictor->observe(probe.throughput_mbps[0]);
  EXPECT_GT(predictor->predict(1), 0.0);
  EXPECT_GT(predictor->predict(10), 0.0);
}

TEST(Engine, QuarantinesClustersWhoseTrainingThrows) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);

  // Trainer hook: let the constructor's global training succeed, then make
  // every per-cluster EM run blow up. The engine must isolate the failures
  // instead of propagating them to session_model() callers.
  auto calls = std::make_shared<std::atomic<int>>(0);
  Cs2pConfig config = fast_config();
  config.trainer = [calls](const std::vector<std::vector<double>>& sequences,
                           const BaumWelchConfig& bw) {
    if (calls->fetch_add(1) == 0) return train_hmm(sequences, bw);
    throw TrainingError("injected EM failure");
  };
  const Cs2pEngine engine(std::move(train), config);

  // Find a probe whose lookup actually attempts cluster training (sessions
  // with no matching cluster fall back to global without calling the
  // trainer and prove nothing about quarantine).
  const Session* probe = nullptr;
  SessionModelRef ref;
  for (const auto& s : test.sessions()) {
    const int before = calls->load();
    ASSERT_NO_THROW(ref = engine.session_model(s.features, s.start_hour));
    if (calls->load() > before) {
      probe = &s;
      break;
    }
  }
  ASSERT_NE(probe, nullptr) << "no test session mapped to a trainable cluster";
  ASSERT_NE(ref.hmm, nullptr);
  EXPECT_TRUE(ref.used_global_model) << "quarantined cluster must fall back";
  EXPECT_EQ(ref.hmm, &engine.global_hmm());
  EXPECT_NE(ref.cluster_label.find("quarantined"), std::string::npos);
  EXPECT_EQ(engine.stats().clusters_quarantined, 1u);
  EXPECT_EQ(engine.stats().clusters_trained, 0u);

  // Repeat lookups serve from the quarantine set: no retraining attempt, no
  // double counting, no throw.
  const int calls_before = calls->load();
  ASSERT_NO_THROW(engine.session_model(probe->features, probe->start_hour));
  EXPECT_EQ(calls->load(), calls_before);
  EXPECT_EQ(engine.stats().clusters_quarantined, 1u);
}

TEST(Engine, WarmUpSurvivesTrainingFailures) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  (void)test;

  // Every other cluster fails to train; warm_up must still complete and the
  // healthy clusters must still get real models.
  auto calls = std::make_shared<std::atomic<int>>(0);
  Cs2pConfig config = fast_config();
  config.trainer = [calls](const std::vector<std::vector<double>>& sequences,
                           const BaumWelchConfig& bw) {
    const int n = calls->fetch_add(1);
    if (n > 0 && n % 2 == 1) throw TrainingError("injected EM failure");
    return train_hmm(sequences, bw);
  };
  const Cs2pEngine engine(std::move(train), config);
  ASSERT_NO_THROW(engine.warm_up());
  EXPECT_GT(engine.stats().clusters_trained, 0u);
  EXPECT_GT(engine.stats().clusters_quarantined, 0u);
}

TEST(Engine, ThrowingCacheFillDoesNotPoisonTheCache) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);

  // First per-cluster attempt throws, later ones succeed. The failed attempt
  // must not leave a half-built cache entry behind: the cluster is
  // quarantined (deterministically served by the global model), not cached
  // as garbage.
  auto calls = std::make_shared<std::atomic<int>>(0);
  Cs2pConfig config = fast_config();
  config.trainer = [calls](const std::vector<std::vector<double>>& sequences,
                           const BaumWelchConfig& bw) {
    if (calls->fetch_add(1) == 1) throw TrainingError("injected EM failure");
    return train_hmm(sequences, bw);
  };
  const Cs2pEngine engine(std::move(train), config);

  // As above: pick a probe that actually exercises the cache-fill path.
  const Session* probe = nullptr;
  SessionModelRef first;
  for (const auto& s : test.sessions()) {
    const int before = calls->load();
    first = engine.session_model(s.features, s.start_hour);
    if (calls->load() > before) {
      probe = &s;
      break;
    }
  }
  ASSERT_NE(probe, nullptr) << "no test session mapped to a trainable cluster";
  const SessionModelRef again =
      engine.session_model(probe->features, probe->start_hour);
  EXPECT_TRUE(first.used_global_model);
  EXPECT_TRUE(again.used_global_model);
  EXPECT_EQ(first.hmm, again.hmm);
  EXPECT_EQ(engine.stats().clusters_quarantined, 1u);

  // A *different* cluster trains fine afterwards: isolation is per-cluster.
  for (const auto& s : test.sessions()) {
    const SessionModelRef other = engine.session_model(s.features, s.start_hour);
    if (!other.used_global_model) {
      EXPECT_NE(other.hmm, &engine.global_hmm());
      break;
    }
  }
  EXPECT_GT(engine.stats().clusters_trained, 0u);
}

TEST(PredictorModelAdapter, NullEngineThrows) {
  EXPECT_THROW(Cs2pPredictorModel(std::shared_ptr<const Cs2pEngine>{}),
               std::invalid_argument);
}

TEST(PredictorModelAdapter, SharedEngineReuse) {
  Dataset dataset = generate_synthetic_dataset(engine_world());
  auto [train, test] = dataset.split_by_day(1);
  auto engine = std::make_shared<Cs2pEngine>(std::move(train), fast_config());
  const Cs2pPredictorModel a(engine);
  const Cs2pPredictorModel b(engine);
  EXPECT_EQ(&a.engine(), &b.engine());
}

}  // namespace
}  // namespace cs2p
