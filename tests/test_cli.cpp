// Tests for the tool command-line parser (tools/cli.h).

#include "tools/cli.h"

#include <gtest/gtest.h>

namespace cs2p::cli {
namespace {

ArgParser make_parser() {
  ArgParser parser("tool", "test parser");
  parser.add_option("name", "a string option", "default");
  parser.add_option("count", "an integer option", "3");
  parser.add_option("rate", "a double option", "0.5");
  parser.add_option("empty", "an option without default");
  return parser;
}

bool parse(ArgParser& parser, std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  argv_strings.insert(argv_strings.begin(), "tool");
  for (auto& s : argv_strings) argv.push_back(s.data());
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_EQ(parser.get("name"), "default");
  EXPECT_EQ(parser.get_long("count"), 3);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.5);
  EXPECT_FALSE(parser.has("empty"));
}

TEST(Cli, SpaceSeparatedValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--name", "custom", "--count", "7"}));
  EXPECT_EQ(parser.get("name"), "custom");
  EXPECT_EQ(parser.get_long("count"), 7);
}

TEST(Cli, EqualsForm) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--rate=1.25", "--empty=x"}));
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 1.25);
  EXPECT_TRUE(parser.has("empty"));
  EXPECT_EQ(parser.get("empty"), "x");
}

TEST(Cli, UnknownFlagRejected) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"--nope", "1"}));
}

TEST(Cli, MissingValueRejected) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"--name"}));
}

TEST(Cli, PositionalRejected) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"stray"}));
}

TEST(Cli, HelpShortCircuits) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"--help"}));
}

TEST(Cli, UnregisteredAccessThrows) {
  const ArgParser parser = make_parser();
  EXPECT_THROW(parser.get("never-registered"), std::logic_error);
}

TEST(Cli, UsageMentionsOptions) {
  ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

}  // namespace
}  // namespace cs2p::cli
