// Tests for the prediction-accuracy replay harness (predictors/evaluation.h).

#include "predictors/evaluation.h"

#include <gtest/gtest.h>

#include "predictors/history.h"
#include "predictors/oracle.h"

namespace cs2p {
namespace {

/// A model that always predicts a fixed constant.
class ConstantModel final : public PredictorModel {
 public:
  explicit ConstantModel(double value) : value_(value) {}
  std::string name() const override { return "Const"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      explicit S(double v) : v_(v) {}
      std::optional<double> predict_initial() const override { return v_; }
      double predict(unsigned) const override { return v_; }
      void observe(double) override {}

     private:
      double v_;
    };
    return std::make_unique<S>(value_);
  }

 private:
  double value_;
};

Dataset fixed_dataset() {
  Dataset d;
  Session a;
  a.features = {"I", "A", "P", "C", "S", "X"};
  a.throughput_mbps = {2.0, 2.0, 2.0, 2.0};
  d.add(a);
  Session b = a;
  b.throughput_mbps = {4.0, 4.0, 4.0, 4.0};
  d.add(b);
  return d;
}

TEST(Evaluation, OracleHasZeroError) {
  const OracleModel oracle;
  EvaluationOptions options;
  options.provide_oracle = true;
  const auto eval = evaluate_predictor(oracle, fixed_dataset(), options);
  EXPECT_DOUBLE_EQ(eval.initial_median_error, 0.0);
  EXPECT_DOUBLE_EQ(eval.midstream_summary.median_of_medians, 0.0);
}

TEST(Evaluation, ConstantModelErrorsComputedExactly) {
  // Predicting 2.0 against sessions at 2.0 and 4.0: errors 0 and 0.5.
  const ConstantModel model(2.0);
  const auto eval = evaluate_predictor(model, fixed_dataset());
  ASSERT_EQ(eval.initial_errors.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.initial_errors[0], 0.0);
  EXPECT_DOUBLE_EQ(eval.initial_errors[1], 0.5);
  EXPECT_DOUBLE_EQ(eval.initial_median_error, 0.25);
  ASSERT_EQ(eval.midstream_median_errors.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.midstream_median_errors[0], 0.0);
  EXPECT_DOUBLE_EQ(eval.midstream_median_errors[1], 0.5);
}

TEST(Evaluation, HistoryModelsSkipInitial) {
  const LastSampleModel ls;
  const auto eval = evaluate_predictor(ls, fixed_dataset());
  EXPECT_TRUE(eval.initial_errors.empty());
  // Constant series: LS is perfect midstream.
  EXPECT_DOUBLE_EQ(eval.midstream_summary.median_of_medians, 0.0);
}

TEST(Evaluation, HorizonShiftsTarget) {
  // Session 1, 2, 3, 4, 5: with horizon 2, after observing w_0 = 1 the
  // target is w_2 = 3; LS predicts 1 -> error 2/3.
  Dataset d;
  Session s;
  s.features = {"I", "A", "P", "C", "S", "X"};
  s.throughput_mbps = {1.0, 2.0, 3.0, 4.0, 5.0};
  d.add(s);
  const LastSampleModel ls;
  EvaluationOptions options;
  options.horizon = 2;
  const auto eval = evaluate_predictor(ls, d, options);
  ASSERT_EQ(eval.midstream_sessions.size(), 1u);
  // Errors: |1-3|/3, |2-4|/4, |3-5|/5 = 2/3, 1/2, 2/5 -> median = 1/2.
  EXPECT_NEAR(eval.midstream_median_errors[0], 0.5, 1e-12);
}

TEST(Evaluation, MaxSessionsLimits) {
  const ConstantModel model(1.0);
  EvaluationOptions options;
  options.max_sessions = 1;
  const auto eval = evaluate_predictor(model, fixed_dataset(), options);
  EXPECT_EQ(eval.initial_errors.size(), 1u);
}

TEST(Evaluation, SessionsShorterThanHorizonOnlyCountInitial) {
  Dataset d;
  Session s;
  s.features = {"I", "A", "P", "C", "S", "X"};
  s.throughput_mbps = {3.0};
  d.add(s);
  const ConstantModel model(3.0);
  const auto eval = evaluate_predictor(model, d);
  EXPECT_EQ(eval.initial_errors.size(), 1u);
  EXPECT_TRUE(eval.midstream_sessions.empty());
}

}  // namespace
}  // namespace cs2p
