// Drift aggregation and the deterministic drift-soak scenario (CI, TSan).
//
// Covers the cluster-level half of the guardrail layer: per-session trips
// feeding the engine's quorum, the drifted-cluster serving path, and a
// 200-session soak with an injected regime shift that asserts the service
// invariants the guardrails exist for — zero NaN predictions and a flap
// count bounded by the hysteresis.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace cs2p {
namespace {

SyntheticConfig soak_world() {
  SyntheticConfig config;
  config.num_isps = 2;
  config.num_provinces = 2;
  config.cities_per_province = 2;
  config.num_servers = 3;
  config.prefixes_per_isp_city = 1;
  config.num_sessions = 1500;
  config.seed = 61;
  return config;
}

Cs2pConfig guarded_engine_config() {
  Cs2pConfig config;
  config.hmm.num_states = 3;
  config.hmm.max_iterations = 10;
  config.selector.min_cluster_size = 10;
  config.max_sequences_per_cluster = 20;
  config.max_global_sequences = 120;
  config.guardrail.enabled = true;
  config.guardrail.baseline_sequences = 16;
  config.guardrail.baseline_length = 32;
  config.drift.min_tripped_sessions = 3;
  config.drift.quorum = 0.5;
  return config;
}

/// First test-day session that maps to a non-global cluster.
const Session* find_clustered_session(const Cs2pEngine& engine,
                                      const Dataset& test) {
  for (const auto& s : test.sessions()) {
    const SessionModelRef ref = engine.session_model(s.features, s.start_hour);
    if (!ref.used_global_model) return &s;
  }
  return nullptr;
}

TEST(Drift, GuardedSessionsAreCreatedWhenEnabled) {
  Dataset dataset = generate_synthetic_dataset(soak_world());
  auto [train, test] = dataset.split_by_day(1);
  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train),
                                                    guarded_engine_config());
  const auto predictor = model->make_session(SessionContext::from(test.sessions()[0]));
  ASSERT_NE(predictor, nullptr);
  EXPECT_FALSE(predictor->degraded());
  EXPECT_EQ(model->engine().stats().guarded_sessions, 1u);
  // Guardrail off: plain HMM predictor, no guarded-session accounting.
  Cs2pConfig plain_config = guarded_engine_config();
  plain_config.guardrail.enabled = false;
  Dataset dataset2 = generate_synthetic_dataset(soak_world());
  auto [train2, test2] = dataset2.split_by_day(1);
  auto plain = std::make_shared<Cs2pPredictorModel>(std::move(train2), plain_config);
  (void)plain->make_session(SessionContext::from(test2.sessions()[0]));
  EXPECT_EQ(plain->engine().stats().guarded_sessions, 0u);
}

TEST(Drift, QuorumOfTrippedSessionsMarksClusterDrifted) {
  Dataset dataset = generate_synthetic_dataset(soak_world());
  auto [train, test] = dataset.split_by_day(1);
  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train),
                                                    guarded_engine_config());
  const Cs2pEngine& engine = model->engine();
  const Session* seed_session = find_clustered_session(engine, test);
  ASSERT_NE(seed_session, nullptr);
  const SessionContext context = SessionContext::from(*seed_session);

  // Open a handful of sessions on the same cluster and push them all out of
  // distribution: the quorum (3 of 4 live, >= 50%) must mark the cluster.
  std::vector<std::unique_ptr<SessionPredictor>> sessions;
  for (int i = 0; i < 4; ++i) sessions.push_back(model->make_session(context));
  EXPECT_EQ(engine.drifted_cluster_count(), 0u);
  for (auto& session : sessions) {
    for (int i = 0; i < 60; ++i) session->observe(0.01);
  }
  EXPECT_GE(engine.stats().guardrail_trips, 3u);
  EXPECT_EQ(engine.drifted_cluster_count(), 1u);

  // Post-drift lookups on that cluster serve the global model and say so.
  const SessionModelRef ref =
      engine.session_model(seed_session->features, seed_session->start_hour);
  EXPECT_TRUE(ref.cluster_drifted);
  EXPECT_TRUE(ref.used_global_model);
  EXPECT_EQ(ref.hmm, &engine.global_hmm());
  EXPECT_EQ(ref.cluster, nullptr);
  EXPECT_NE(ref.cluster_label.find("(drifted)"), std::string::npos);

  // New sessions on the drifted cluster carry the context in their flags.
  const auto drifted_session = model->make_session(context);
  EXPECT_TRUE(drifted_session->serve_flags() & serve_flags::kClusterDrifted);
  EXPECT_TRUE(drifted_session->serve_flags() & serve_flags::kGlobalModel);
}

TEST(Drift, InDistributionSessionsNeverReachQuorum) {
  Dataset dataset = generate_synthetic_dataset(soak_world());
  auto [train, test] = dataset.split_by_day(1);
  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train),
                                                    guarded_engine_config());
  const Cs2pEngine& engine = model->engine();

  std::size_t driven = 0;
  for (const auto& s : test.sessions()) {
    if (++driven > 100) break;
    auto session = model->make_session(SessionContext::from(s));
    for (double w : s.throughput_mbps) session->observe(w);
  }
  // Real traffic from the same world the engine trained on: no cluster may
  // be condemned.
  EXPECT_EQ(engine.drifted_cluster_count(), 0u);
}

TEST(Drift, BaselineCacheIsStablePerModel) {
  Dataset dataset = generate_synthetic_dataset(soak_world());
  auto [train, test] = dataset.split_by_day(1);
  const Cs2pEngine engine(std::move(train), guarded_engine_config());
  const SessionModelRef ref =
      engine.session_model(test.sessions()[0].features, test.sessions()[0].start_hour);
  const SurpriseBaseline a = engine.surprise_baseline(ref.hmm);
  const SurpriseBaseline b = engine.surprise_baseline(ref.hmm);
  EXPECT_DOUBLE_EQ(a.mean_log_likelihood, b.mean_log_likelihood);
  EXPECT_DOUBLE_EQ(a.std_log_likelihood, b.std_log_likelihood);
  EXPECT_TRUE(std::isfinite(a.mean_log_likelihood));
}

/// Every value in a text exposition, asserting none are non-finite. Returns
/// the number of series seen so the caller can require a non-empty scrape.
std::size_t assert_all_series_finite(const std::string& exposition) {
  std::size_t series = 0;
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    ++series;
    const double value = std::stod(line.substr(space + 1));
    EXPECT_TRUE(std::isfinite(value)) << "non-finite series: " << line;
  }
  return series;
}

// The CI drift-soak: 200 guarded sessions, half hit by a mid-stream regime
// shift (throughput collapses to ~2% of normal). Deterministic via fixed
// seeds. Asserts the guardrail acceptance criteria end to end. A scraper
// thread reads the engine's metrics registry throughout — under TSan this is
// the scrape-during-write soak for the telemetry layer, and every mid-soak
// snapshot must already satisfy the exposition invariants (parseable, no
// non-finite values).
TEST(DriftSoak, TwoHundredSessionsWithRegimeShift) {
  Dataset dataset = generate_synthetic_dataset(soak_world());
  auto [train, test] = dataset.split_by_day(1);
  Cs2pConfig config = guarded_engine_config();
  // Soak uses a quorum high enough that the shifted half of one cluster's
  // sessions must agree before the cluster is condemned.
  config.drift.min_tripped_sessions = 4;
  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train), config);
  const Cs2pEngine& engine = model->engine();

  Rng rng(2026);
  const std::size_t kSessions = 200;
  std::size_t created = 0;
  std::size_t shifted = 0;
  std::size_t nan_predictions = 0;
  std::vector<std::unique_ptr<SessionPredictor>> open_sessions;

  // Mid-soak scraper: hammers the registry while sessions write to it.
  std::atomic<bool> soak_done{false};
  std::atomic<std::size_t> scrapes{0};
  std::thread scraper([&engine, &soak_done, &scrapes] {
    while (!soak_done.load(std::memory_order_relaxed)) {
      const std::string exposition = engine.metrics().scrape();
      EXPECT_EQ(exposition.rfind("# cs2p_metrics_version", 0), 0u);
      assert_all_series_finite(exposition);
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::size_t i = 0; i < kSessions && i < test.size(); ++i) {
    const Session& s = test.sessions()[i];
    if (s.throughput_mbps.size() < 6) continue;
    auto session = model->make_session(SessionContext::from(s));
    ++created;
    const bool inject_shift = (i % 2) == 0;
    if (inject_shift) ++shifted;
    const std::size_t shift_epoch = s.throughput_mbps.size() / 2;
    for (std::size_t t = 0; t < s.throughput_mbps.size(); ++t) {
      double w = s.throughput_mbps[t];
      if (inject_shift && t >= shift_epoch)
        w = std::max(0.005, 0.02 * w * rng.uniform(0.8, 1.2));
      session->observe(w);
      const double forecast = session->predict(1);
      if (!std::isfinite(forecast)) ++nan_predictions;
    }
    // Keep every 4th session open so cluster drift accounting sees live
    // sessions, and close the rest through the destructor path.
    if (i % 4 == 0) open_sessions.push_back(std::move(session));
  }

  soak_done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GE(scrapes.load(), 1u);

  // One more full-scrape pass after the writers quiesce, and the registry's
  // view of the soak must agree with the engine's own accounting.
  const std::string final_scrape = engine.metrics().scrape();
  EXPECT_GT(assert_all_series_finite(final_scrape), 0u);
  EXPECT_NE(final_scrape.find("cs2p_engine_guardrail_trips_total"),
            std::string::npos);

  const EngineStats stats = engine.stats();
  ASSERT_GT(shifted, 50u);
  // The invariant the guardrail exists for: not one NaN forecast.
  EXPECT_EQ(nan_predictions, 0u);
  // Shifted sessions must actually trip...
  EXPECT_GE(stats.guardrail_trips, shifted / 2);
  // ...and the hysteresis must bound flapping: a collapsed regime stays
  // collapsed, so well under 2 trips per shifted session on average.
  EXPECT_LE(stats.guardrail_trips, 2 * shifted);
  EXPECT_EQ(stats.guarded_sessions, created);
  open_sessions.clear();
}

}  // namespace
}  // namespace cs2p
