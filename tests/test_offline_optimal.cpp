// Tests for the offline-optimal DP (abr/offline_optimal.h).

#include "abr/offline_optimal.h"

#include <gtest/gtest.h>

#include <limits>

#include "abr/controllers.h"
#include "abr/mpc.h"
#include "predictors/oracle.h"
#include "util/rng.h"

namespace cs2p {
namespace {

VideoSpec tiny_video() {
  VideoSpec video;
  video.bitrates_kbps = {500.0, 1500.0};
  video.chunk_seconds = 4.0;
  video.num_chunks = 3;
  video.buffer_capacity_seconds = 12.0;
  return video;
}

/// Brute force over all bitrate plans for small instances, replaying the
/// exact simulator dynamics.
double brute_force_optimal(const VideoSpec& video, const ThroughputTrace& trace,
                           const QoeParams& qoe) {
  const std::size_t ladder = video.bitrates_kbps.size();
  std::vector<std::size_t> plan(video.num_chunks, 0);
  double best = -std::numeric_limits<double>::infinity();
  while (true) {
    // Replay.
    std::vector<double> bitrates, rebuffers;
    double buffer = 0.0;
    double startup = 0.0;
    for (std::size_t k = 0; k < video.num_chunks; ++k) {
      const double bitrate = video.bitrates_kbps[plan[k]];
      const double download = bitrate * video.chunk_seconds / 1000.0 / trace.at(k);
      double rebuffer = 0.0;
      if (k == 0) {
        startup = download;
        buffer = video.chunk_seconds;
      } else {
        rebuffer = std::max(0.0, download - buffer);
        buffer = std::max(buffer - download, 0.0) + video.chunk_seconds;
      }
      buffer = std::min(buffer, video.buffer_capacity_seconds);
      bitrates.push_back(bitrate);
      rebuffers.push_back(rebuffer);
    }
    best = std::max(best, qoe_from_series(bitrates, rebuffers, startup, qoe));

    std::size_t digit = 0;
    while (digit < plan.size() && ++plan[digit] == ladder) {
      plan[digit] = 0;
      ++digit;
    }
    if (digit == plan.size()) break;
  }
  return best;
}

TEST(OfflineOptimal, MatchesBruteForceOnTinyInstances) {
  const VideoSpec video = tiny_video();
  OfflineOptimalConfig config;
  config.buffer_quantum_seconds = 0.01;
  for (const auto& trace_values :
       {std::vector<double>{2.0, 2.0, 2.0}, std::vector<double>{0.6, 2.0, 0.6},
        std::vector<double>{3.0, 0.4, 3.0}}) {
    const ThroughputTrace trace(trace_values);
    const double brute = brute_force_optimal(video, trace, config.qoe);
    const auto result = offline_optimal_qoe(video, trace, config);
    EXPECT_NEAR(result.qoe, brute, std::abs(brute) * 1e-3 + 1.0);
  }
}

TEST(OfflineOptimal, PlanIsWithinLadder) {
  const VideoSpec video = tiny_video();
  const ThroughputTrace trace({1.0, 2.0, 0.5});
  const auto result = offline_optimal_qoe(video, trace);
  ASSERT_EQ(result.bitrate_plan.size(), video.num_chunks);
  for (std::size_t choice : result.bitrate_plan)
    EXPECT_LT(choice, video.bitrates_kbps.size());
}

TEST(OfflineOptimal, DominatesHeuristicControllers) {
  // The DP value must upper-bound the QoE of any online policy on the same
  // dynamics (up to quantisation slack).
  VideoSpec video;
  video.bitrates_kbps = {350.0, 600.0, 1000.0, 2000.0, 3000.0};
  video.num_chunks = 30;
  Rng rng(17);
  std::vector<double> trace_values;
  for (int i = 0; i < 30; ++i) trace_values.push_back(rng.uniform(0.5, 4.0));
  const ThroughputTrace trace(trace_values);

  const auto optimal = offline_optimal_qoe(video, trace);

  BufferBasedController bb;
  const auto bb_result = simulate_playback(video, trace, bb, nullptr);
  EXPECT_GE(optimal.qoe + 5.0, compute_qoe(bb_result).total);

  const OracleModel oracle_model;
  SessionContext context;
  context.oracle_series = &trace_values;
  auto oracle = oracle_model.make_session(context);
  MpcController mpc;
  const auto mpc_result = simulate_playback(video, trace, mpc, oracle.get());
  EXPECT_GE(optimal.qoe + 5.0, compute_qoe(mpc_result).total);
}

TEST(OfflineOptimal, SingleChunkVideo) {
  VideoSpec video = tiny_video();
  video.num_chunks = 1;
  const ThroughputTrace trace({2.0});
  const auto result = offline_optimal_qoe(video, trace);
  ASSERT_EQ(result.bitrate_plan.size(), 1u);
  // At mu_s = 300/s: 1500 kbps costs 3 s startup = 900 penalty -> net 600;
  // 500 kbps costs 1 s = 300 -> net 200. The optimum takes the higher rung.
  EXPECT_EQ(result.bitrate_plan[0], 1u);
}

TEST(OfflineOptimal, HighStartupPenaltyPrefersLowFirstChunk) {
  VideoSpec video = tiny_video();
  video.num_chunks = 1;
  OfflineOptimalConfig config;
  config.qoe.mu_s = 3000.0;
  const ThroughputTrace trace({2.0});
  const auto result = offline_optimal_qoe(video, trace, config);
  EXPECT_EQ(result.bitrate_plan[0], 0u);
}

TEST(OfflineOptimal, MalformedConfigThrows) {
  VideoSpec video = tiny_video();
  const ThroughputTrace trace({1.0});
  video.bitrates_kbps.clear();
  EXPECT_THROW(offline_optimal_qoe(video, trace), std::invalid_argument);
  video = tiny_video();
  OfflineOptimalConfig config;
  config.buffer_quantum_seconds = 0.0;
  EXPECT_THROW(offline_optimal_qoe(video, trace, config), std::invalid_argument);
}

// Property sweep: optimal >= simulated QoE across random traces.
class OptimalDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalDominance, UpperBoundsBufferBased) {
  VideoSpec video;
  video.bitrates_kbps = {350.0, 600.0, 1000.0, 2000.0, 3000.0};
  video.num_chunks = 20;
  Rng rng(GetParam());
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.uniform(0.4, 6.0));
  const ThroughputTrace trace(values);
  const auto optimal = offline_optimal_qoe(video, trace);
  BufferBasedController bb;
  const auto played = simulate_playback(video, trace, bb, nullptr);
  EXPECT_GE(optimal.qoe + 5.0, compute_qoe(played).total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalDominance,
                         ::testing::Values(1, 5, 9, 13, 21, 33, 77, 123));

}  // namespace
}  // namespace cs2p
