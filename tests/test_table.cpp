// Tests for the aligned table printer (util/table.h).

#include "util/table.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

TEST(TextTable, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.to_string();
  // Header present, separator line present, all rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // All lines should contain "value" column aligned: the header line length
  // equals the longest row line length.
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable table({"label", "a", "b"});
  table.add_row_numeric("row", {1.5, 2.25}, 1);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("2.2"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW(table.to_string());
}

TEST(TextTable, WiderRowThanHeader) {
  TextTable table({"a"});
  table.add_row({"1", "2", "3"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("3"), std::string::npos);
}

}  // namespace
}  // namespace cs2p
