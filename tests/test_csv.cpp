// Tests for the CSV reader/writer (util/csv.h).

#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cs2p {
namespace {

TEST(Csv, ParseSimple) {
  const auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(table.header.size(), 3u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][2], "6");
}

TEST(Csv, ColumnLookup) {
  const auto table = parse_csv("x,y\n1,2\n");
  EXPECT_EQ(table.column("y"), 1);
  EXPECT_EQ(table.column("missing"), -1);
}

TEST(Csv, QuotedCells) {
  const auto table = parse_csv("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "hello, world");
  EXPECT_EQ(table.rows[0][1], "say \"hi\"");
}

TEST(Csv, QuotedNewline) {
  const auto table = parse_csv("a\n\"line1\nline2\"\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "line1\nline2");
}

TEST(Csv, CrLfHandled) {
  const auto table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(Csv, RowWidthMismatchThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(Csv, EscapePassthroughAndQuoting) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WriteParseRoundTrip) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"x", "1,5"}, {"multi\nline", "\"quoted\""}};
  std::ostringstream out;
  write_csv(out, table);
  const auto parsed = parse_csv(out.str());
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[0][1], "1,5");
  EXPECT_EQ(parsed.rows[1][0], "multi\nline");
  EXPECT_EQ(parsed.rows[1][1], "\"quoted\"");
}

TEST(Csv, WriteRejectsRaggedRows) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"only-one"}};
  std::ostringstream out;
  EXPECT_THROW(write_csv(out, table), std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cs2p_csv_test.csv";
  CsvTable table;
  table.header = {"k", "v"};
  table.rows = {{"alpha", "1"}, {"beta", "2"}};
  write_csv_file(path, table);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.rows, table.rows);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/xyz.csv"), std::runtime_error);
}

TEST(Csv, EmptyInput) {
  const auto table = parse_csv("");
  EXPECT_TRUE(table.header.empty());
  EXPECT_TRUE(table.rows.empty());
}

}  // namespace
}  // namespace cs2p
