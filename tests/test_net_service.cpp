// Integration tests for the TCP prediction service (net/server.h, client.h).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "predictors/predictor.h"

namespace cs2p {
namespace {

/// Deterministic in-process model: initial = 2.0, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 0.0;
    };
    return std::make_unique<S>();
  }
};

SessionFeatures features() {
  return {"ISP0", "AS0", "P0", "C0", "S0", "Pfx0"};
}

TEST(PredictionService, HelloObservePredictBye) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());

  const SessionResponse session = client.hello(features(), 10.0);
  EXPECT_GT(session.session_id, 0u);
  EXPECT_DOUBLE_EQ(session.initial_mbps, 2.0);

  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 5.0), 6.0);
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 7.0), 8.0);
  EXPECT_DOUBLE_EQ(client.predict(session.session_id, 3), 10.0);
  EXPECT_NO_THROW(client.bye(session.session_id));
}

TEST(PredictionService, UnknownSessionIsAnError) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  EXPECT_THROW(client.observe(424242, 1.0), std::runtime_error);
  EXPECT_THROW(client.predict(424242, 1), std::runtime_error);
}

TEST(PredictionService, ByeInvalidatesSession) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 1.0);
  client.bye(session.session_id);
  EXPECT_THROW(client.observe(session.session_id, 1.0), std::runtime_error);
}

TEST(PredictionService, ZeroStepsAheadIsAnError) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 1.0);
  EXPECT_THROW(client.predict(session.session_id, 0), std::runtime_error);
}

TEST(PredictionService, MultipleSessionsAreIsolated) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const auto a = client.hello(features(), 1.0);
  const auto b = client.hello(features(), 2.0);
  EXPECT_NE(a.session_id, b.session_id);
  client.observe(a.session_id, 10.0);
  client.observe(b.session_id, 20.0);
  EXPECT_DOUBLE_EQ(client.predict(a.session_id, 1), 11.0);
  EXPECT_DOUBLE_EQ(client.predict(b.session_id, 1), 21.0);
}

TEST(PredictionService, ConcurrentClients) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  constexpr int kClients = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &failures, c] {
      try {
        PredictionClient client(server.port());
        const auto session = client.hello(features(), static_cast<double>(c));
        for (int r = 0; r < kRounds; ++r) {
          const double forecast = client.observe(session.session_id, c + r);
          if (forecast != c + r + 1.0) ++failures;
        }
        client.bye(session.session_id);
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_handled(),
            static_cast<std::uint64_t>(kClients * (kRounds + 2)));
}

TEST(PredictionService, RemoteSessionPredictorAdapter) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  RemoteSessionPredictor predictor(client, features(), 9.0);
  EXPECT_DOUBLE_EQ(predictor.predict_initial().value(), 2.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 2.0);  // cold: initial value
  predictor.observe(4.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 5.0);   // cached from OBSERVE
  EXPECT_DOUBLE_EQ(predictor.predict(3), 7.0);   // extra round trip
}

TEST(PredictionService, ModelDownloadUnsupportedByGenericModel) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  EXPECT_THROW(client.download_model(features(), 1.0), std::runtime_error);
}

TEST(PredictionService, ServerStopsCleanly) {
  auto server = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>());
  const std::uint16_t port = server->port();
  PredictionClient client(port);
  const auto session = client.hello(features(), 1.0);
  (void)session;
  server->stop();
  // A second stop must be harmless; destruction too.
  server->stop();
  server.reset();
  SUCCEED();
}

TEST(PredictionService, NullModelThrows) {
  EXPECT_THROW(PredictionServer(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace cs2p
