// Integration tests for the TCP prediction service (net/server.h, client.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hmm/kernel.h"
#include "net/client.h"
#include "net/server.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "predictors/hmm_session.h"
#include "predictors/predictor.h"

namespace cs2p {
namespace {

/// Deterministic in-process model: initial = 2.0, forecast = last + 1.
class EchoPlusOneModel final : public PredictorModel {
 public:
  std::string name() const override { return "EchoPlusOne"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned steps) const override {
        return last_ + static_cast<double>(steps);
      }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 0.0;
    };
    return std::make_unique<S>();
  }
};

SessionFeatures features() {
  return {"ISP0", "AS0", "P0", "C0", "S0", "Pfx0"};
}

/// HMM-backed model whose sessions share one SoA kernel — the shape that
/// makes the server's per-poll batch path (DESIGN.md §16) engage.
class SharedKernelHmmModel final : public PredictorModel {
 public:
  SharedKernelHmmModel()
      : kernel_(HmmKernel::create(
            GaussianHmm{{0.6, 0.4},
                        Matrix{{0.9, 0.1}, {0.2, 0.8}},
                        {{1.0, 0.1}, {5.0, 0.5}}})) {}
  std::string name() const override { return "SharedKernelHmm"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext&) const override {
    return std::make_unique<HmmSessionPredictor>(kernel_, 2.0);
  }

 private:
  std::shared_ptr<const HmmKernel> kernel_;
};

TEST(PredictionService, HelloObservePredictBye) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());

  const SessionResponse session = client.hello(features(), 10.0);
  EXPECT_GT(session.session_id, 0u);
  EXPECT_DOUBLE_EQ(session.initial_mbps, 2.0);

  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 5.0), 6.0);
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 7.0), 8.0);
  EXPECT_DOUBLE_EQ(client.predict(session.session_id, 3), 10.0);
  EXPECT_NO_THROW(client.bye(session.session_id));
}

TEST(PredictionService, UnknownSessionIsAnError) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  EXPECT_THROW(client.observe(424242, 1.0), std::runtime_error);
  EXPECT_THROW(client.predict(424242, 1), std::runtime_error);
}

TEST(PredictionService, ByeInvalidatesSession) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 1.0);
  client.bye(session.session_id);
  EXPECT_THROW(client.observe(session.session_id, 1.0), std::runtime_error);
}

TEST(PredictionService, ZeroStepsAheadIsAnError) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const SessionResponse session = client.hello(features(), 1.0);
  EXPECT_THROW(client.predict(session.session_id, 0), std::runtime_error);
}

TEST(PredictionService, MultipleSessionsAreIsolated) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const auto a = client.hello(features(), 1.0);
  const auto b = client.hello(features(), 2.0);
  EXPECT_NE(a.session_id, b.session_id);
  client.observe(a.session_id, 10.0);
  client.observe(b.session_id, 20.0);
  EXPECT_DOUBLE_EQ(client.predict(a.session_id, 1), 11.0);
  EXPECT_DOUBLE_EQ(client.predict(b.session_id, 1), 21.0);
}

// OBSERVE/PREDICT on kernel-backed sessions must be served through the
// batched inference path and show up in its telemetry — the end-to-end proof
// that per-poll frame batching is live, not just unit-tested.
TEST(PredictionService, HmmSessionsServeThroughBatchedKernelPath) {
  PredictionServer server(std::make_shared<SharedKernelHmmModel>());
  PredictionClient client(server.port());
  const auto a = client.hello(features(), 0.0);
  const auto b = client.hello(features(), 0.0);
  EXPECT_DOUBLE_EQ(client.observe(a.session_id, 1.0), 1.0);  // MLE state 0
  EXPECT_DOUBLE_EQ(client.observe(b.session_id, 5.0), 5.0);  // MLE state 1
  EXPECT_DOUBLE_EQ(client.predict(a.session_id, 1), 1.0);
  EXPECT_GE(server.batched_predicts(), 3u);

  const StatsResponse stats = client.stats();
  EXPECT_NE(stats.exposition.find("cs2p_server_batched_predicts_total"),
            std::string::npos);
  EXPECT_NE(stats.exposition.find("cs2p_server_batch_size"),
            std::string::npos);
  client.bye(a.session_id);
  client.bye(b.session_id);
}

TEST(PredictionService, ConcurrentClients) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  constexpr int kClients = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &failures, c] {
      try {
        PredictionClient client(server.port());
        const auto session = client.hello(features(), static_cast<double>(c));
        for (int r = 0; r < kRounds; ++r) {
          const double forecast = client.observe(session.session_id, c + r);
          if (forecast != c + r + 1.0) ++failures;
        }
        client.bye(session.session_id);
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_handled(),
            static_cast<std::uint64_t>(kClients * (kRounds + 2)));
}

TEST(PredictionService, RemoteSessionPredictorAdapter) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  RemoteSessionPredictor predictor(client, features(), 9.0);
  EXPECT_DOUBLE_EQ(predictor.predict_initial().value(), 2.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 2.0);  // cold: initial value
  predictor.observe(4.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 5.0);   // cached from OBSERVE
  EXPECT_DOUBLE_EQ(predictor.predict(3), 7.0);   // extra round trip
}

TEST(PredictionService, ModelDownloadUnsupportedByGenericModel) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  EXPECT_THROW(client.download_model(features(), 1.0), std::runtime_error);
}

TEST(PredictionService, ServerStopsCleanly) {
  auto server = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>());
  const std::uint16_t port = server->port();
  PredictionClient client(port);
  const auto session = client.hello(features(), 1.0);
  (void)session;
  server->stop();
  // A second stop must be harmless; destruction too.
  server->stop();
  server.reset();
  SUCCEED();
}

TEST(PredictionService, NullModelThrows) {
  EXPECT_THROW(PredictionServer(nullptr), std::invalid_argument);
}

// -- Robustness: validation, caps, timeouts, eviction -----------------------

TEST(PredictionService, InvalidSamplesRejectedWithTypedError) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  const auto session = client.hello(features(), 1.0);

  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), -1.0,
                           1e9}) {
    try {
      client.observe(session.session_id, bad);
      FAIL() << "sample " << bad << " should have been rejected";
    } catch (const ServerError& e) {
      EXPECT_EQ(e.code(), WireErrorCode::kInvalidSample);
    }
  }
  // The predictor state was never touched: a good sample still works.
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 5.0), 6.0);
}

TEST(PredictionService, UnknownSessionCarriesTypedCode) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  try {
    client.observe(424242, 1.0);
    FAIL() << "expected UNKNOWN_SESSION";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kUnknownSession);
  }
}

TEST(PredictionService, ConnectionCapRejectsCleanly) {
  ServerConfig config;
  config.max_connections = 2;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);

  PredictionClient a(server.port()), b(server.port()), c(server.port());
  const auto sa = a.hello(features(), 1.0);
  const auto sb = b.hello(features(), 2.0);
  try {
    c.hello(features(), 3.0);
    FAIL() << "expected OVERLOADED rejection";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kOverloaded);
  }
  EXPECT_GE(server.connections_rejected(), 1u);
  // Existing connections are unaffected by the rejection.
  EXPECT_DOUBLE_EQ(a.observe(sa.session_id, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(b.observe(sb.session_id, 2.0), 3.0);
}

TEST(PredictionService, IdleConnectionReclaimedAndClientReconnects) {
  ServerConfig config;
  config.idle_timeout_ms = 50;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  PredictionClient client(server.port());
  const auto session = client.hello(features(), 1.0);
  // Let the server reap the idle connection, then keep using the session:
  // the client reconnects transparently and the session table still holds
  // our state (idle timeout kills connections, not sessions).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 7.0), 8.0);
  EXPECT_GE(client.reconnects(), 1u);
}

TEST(PredictionService, AbandonedSessionsEvictedByTtl) {
  ServerConfig config;
  config.session_ttl_ms = 80;
  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  {
    PredictionClient client(server.port());
    (void)client.hello(features(), 1.0);
    EXPECT_EQ(server.session_count(), 1u);
    // Client vanishes without BYE.
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.session_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_GE(server.sessions_evicted(), 1u);
}

TEST(PredictionService, ServerRestartHealsViaHelloReplay) {
  auto model = std::make_shared<EchoPlusOneModel>();
  auto server = std::make_unique<PredictionServer>(model);
  const std::uint16_t port = server->port();

  PredictionClient client(port);
  const auto session = client.hello(features(), 1.0);
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 3.0), 4.0);

  // Restart the server on the same port: all session state is lost.
  server.reset();
  server = std::make_unique<PredictionServer>(model, port);

  // The client reconnects, gets UNKNOWN_SESSION, replays HELLO, and the
  // original handle keeps working against the re-established session.
  EXPECT_DOUBLE_EQ(client.observe(session.session_id, 5.0), 6.0);
  EXPECT_GE(client.sessions_reestablished(), 1u);
  EXPECT_GE(client.reconnects(), 1u);
}

// -- Serve-flags plumbing (protocol v2) --------------------------------------

/// Sessions degrade after observing a sample below 0.5 and recover above it;
/// while degraded they report the guardrail flag bits. Mirrors the shape of
/// GuardedSessionPredictor with a trivially controllable switch.
class SwitchableModel final : public PredictorModel {
 public:
  std::string name() const override { return "Switchable"; }
  std::unique_ptr<SessionPredictor> make_session(const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned) const override { return degraded_ ? 0.25 : last_; }
      void observe(double w) override {
        last_ = w;
        degraded_ = w < 0.5;
      }
      bool degraded() const override { return degraded_; }
      std::uint8_t serve_flags() const override {
        return degraded_ ? (serve_flags::kDegraded | serve_flags::kGuardrailTripped)
                         : serve_flags::kPrimary;
      }

     private:
      double last_ = 0.0;
      bool degraded_ = false;
    };
    return std::make_unique<S>();
  }
};

TEST(PredictionService, ServeFlagsTravelToClient) {
  PredictionServer server(std::make_shared<SwitchableModel>());
  PredictionClient client(server.port());
  const auto session = client.hello(features(), 1.0);

  // Healthy: PRED carries primary flags and the counter stays at zero.
  const PredictionResponse healthy = client.observe_response(session.session_id, 3.0);
  EXPECT_EQ(healthy.flags, serve_flags::kPrimary);
  EXPECT_EQ(server.degraded_replies(), 0u);

  // Degrade the session: the reply's flags explain the serving path and the
  // server counts the degraded reply.
  const PredictionResponse tripped = client.observe_response(session.session_id, 0.1);
  EXPECT_TRUE(tripped.flags & serve_flags::kDegraded);
  EXPECT_TRUE(tripped.flags & serve_flags::kGuardrailTripped);
  EXPECT_DOUBLE_EQ(tripped.mbps, 0.25);
  EXPECT_GE(server.degraded_replies(), 1u);

  const PredictionResponse direct = client.predict_response(session.session_id, 1);
  EXPECT_TRUE(direct.flags & serve_flags::kDegraded);

  // Recovery clears the flags again.
  const PredictionResponse recovered = client.observe_response(session.session_id, 4.0);
  EXPECT_EQ(recovered.flags, serve_flags::kPrimary);
}

TEST(PredictionService, RemotePredictorSurfacesServerFlags) {
  PredictionServer server(std::make_shared<SwitchableModel>());
  PredictionClient client(server.port());
  RemoteSessionPredictor predictor(client, features(), 9.0);

  predictor.observe(3.0);
  EXPECT_EQ(predictor.serve_flags(), serve_flags::kPrimary);
  EXPECT_FALSE(predictor.degraded());

  // The server-side trip is visible through the adapter without any local
  // fault: the remote bits pass through verbatim.
  predictor.observe(0.1);
  EXPECT_TRUE(predictor.serve_flags() & serve_flags::kGuardrailTripped);
  EXPECT_TRUE(predictor.serve_flags() & serve_flags::kDegraded);
  EXPECT_FALSE(predictor.serve_flags() & serve_flags::kRemoteFallback);
  EXPECT_FALSE(predictor.degraded());  // the service itself is healthy
  EXPECT_EQ(predictor.last_server_flags(),
            serve_flags::kDegraded | serve_flags::kGuardrailTripped);

  predictor.observe(5.0);
  EXPECT_EQ(predictor.serve_flags(), serve_flags::kPrimary);
}

TEST(PredictionService, RemoteFallbackSetsLocalFlagBits) {
  auto server = std::make_unique<PredictionServer>(
      std::make_shared<SwitchableModel>());
  const std::uint16_t port = server->port();
  ClientConfig config;
  config.max_retries = 1;
  config.backoff_initial_ms = 1;
  PredictionClient client(port, config);
  RemoteSessionPredictor predictor(client, features(), 9.0);
  predictor.observe(3.0);

  // Kill the service entirely: the predictor degrades to its local fallback
  // and its flags say so (remote-fallback + degraded).
  server.reset();
  for (int i = 0; i < 10 && !predictor.degraded(); ++i) predictor.observe(3.0);
  ASSERT_TRUE(predictor.degraded());
  EXPECT_TRUE(predictor.serve_flags() & serve_flags::kRemoteFallback);
  EXPECT_TRUE(predictor.serve_flags() & serve_flags::kDegraded);
}

// -- Shutdown races ---------------------------------------------------------

TEST(PredictionService, StopWhileRequestsInFlight) {
  auto server = std::make_unique<PredictionServer>(
      std::make_shared<EchoPlusOneModel>());
  const std::uint16_t port = server->port();

  constexpr int kThreads = 4;
  std::atomic<int> escaped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, &escaped] {
      try {
        ClientConfig config;
        config.max_retries = 1;
        config.backoff_initial_ms = 1;
        PredictionClient client(port, config);
        RemoteSessionPredictor predictor(client, features(), 1.0);
        for (int i = 0; i < 500; ++i) predictor.observe(1.0 + i % 7);
        // Either the whole run beat the shutdown, or the predictor degraded
        // to its local fallback — never an exception into this loop.
      } catch (const std::exception&) {
        ++escaped;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->stop();
  for (auto& t : threads) t.join();
  EXPECT_EQ(escaped.load(), 0);
}

TEST(PredictionService, ConcurrentStopCallers) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());
  (void)client.hello(features(), 1.0);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i)
    stoppers.emplace_back([&server] { server.stop(); });
  for (auto& t : stoppers) t.join();
  SUCCEED();
}

TEST(PredictionService, DestructorDuringAccept) {
  auto model = std::make_shared<EchoPlusOneModel>();
  for (int i = 0; i < 10; ++i) {
    PredictionServer server(model);
    // Destroyed immediately, possibly before the accept loop first polls.
  }
  SUCCEED();
}

// -- STATS verb (protocol v3) -------------------------------------------------

/// Value of the series rendered exactly as `key` in the exposition, or NaN.
double series_value(const std::string& exposition, const std::string& key) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.size() > key.size() + 1 && line.compare(0, key.size(), key) == 0 &&
        line[key.size()] == ' ')
      return std::stod(line.substr(key.size() + 1));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TEST(PredictionService, StatsVerbScrapesLiveRegistry) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  PredictionClient client(server.port());

  const auto session = client.hello(features(), 1.0);
  client.observe(session.session_id, 3.0);
  client.predict(session.session_id, 1);

  const StatsResponse stats = client.stats();
  EXPECT_EQ(stats.exposition_version, obs::kMetricsExpositionVersion);
  EXPECT_TRUE(stats.exposition.starts_with("# cs2p_metrics_version"));

  const double requests =
      series_value(stats.exposition, "cs2p_server_requests_total");
  const double replies =
      series_value(stats.exposition, "cs2p_server_replies_total");
  ASSERT_FALSE(std::isnan(requests));
  ASSERT_FALSE(std::isnan(replies));
  // hello + observe + predict + the STATS request itself.
  EXPECT_GE(requests, 4.0);
  // The STATS request is counted before its reply is sent, so the scrape
  // itself proves the invariant strictly.
  EXPECT_GT(requests, replies);
  EXPECT_GE(replies, 3.0);

  // Per-verb counters saw the session lifecycle.
  EXPECT_EQ(series_value(stats.exposition,
                         "cs2p_server_verb_requests_total{verb=\"hello\"}"),
            1.0);
  EXPECT_EQ(series_value(stats.exposition,
                         "cs2p_server_verb_requests_total{verb=\"stats\"}"),
            1.0);
  // The session is still open; the gauge is refreshed at scrape time.
  EXPECT_EQ(series_value(stats.exposition, "cs2p_server_live_sessions"), 1.0);

  client.bye(session.session_id);
  const StatsResponse after = client.stats();
  EXPECT_EQ(series_value(after.exposition, "cs2p_server_live_sessions"), 0.0);
  // Counters are cumulative: the second scrape can only move forward.
  EXPECT_GT(series_value(after.exposition, "cs2p_server_requests_total"),
            requests);
}

TEST(PredictionService, StatsScrapeCountsDegradedReplies) {
  PredictionServer server(std::make_shared<SwitchableModel>());
  PredictionClient client(server.port());
  const auto session = client.hello(features(), 1.0);
  (void)client.observe_response(session.session_id, 0.1);  // trips the guardrail

  const StatsResponse stats = client.stats();
  EXPECT_GE(
      series_value(stats.exposition, "cs2p_server_degraded_replies_total"),
      1.0);
  // Registry and legacy accessor read the same counter.
  EXPECT_EQ(
      series_value(stats.exposition, "cs2p_server_degraded_replies_total"),
      static_cast<double>(server.degraded_replies()));
  // Request latencies landed in the histogram (hello + observe; the STATS
  // request's own latency is only observed after its reply is sent).
  EXPECT_GE(series_value(stats.exposition,
                         "cs2p_server_request_seconds_count"),
            2.0);
}

TEST(PredictionService, StatsInvariantHoldsUnderConcurrentScrapes) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  constexpr int kWorkers = 4;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int c = 0; c < kWorkers; ++c) {
    workers.emplace_back([&server, &failures, c] {
      try {
        PredictionClient client(server.port());
        const auto session = client.hello(features(), static_cast<double>(c));
        for (int r = 0; r < 100; ++r)
          client.observe(session.session_id, 1.0 + r % 5);
        client.bye(session.session_id);
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }

  std::thread scraper([&server, &done, &failures] {
    try {
      PredictionClient client(server.port());
      while (!done.load(std::memory_order_relaxed)) {
        const StatsResponse stats = client.stats();
        const double requests =
            series_value(stats.exposition, "cs2p_server_requests_total");
        const double replies =
            series_value(stats.exposition, "cs2p_server_replies_total");
        // A reply can never outrun its request, no matter when we look.
        if (!(requests >= replies)) ++failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } catch (const std::exception&) {
      ++failures;
    }
  });

  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(failures.load(), 0);
}

// -- Sharded serving core: worker pool + session migration --------------------

/// Live thread count of this process (the "Threads:" row of
/// /proc/self/status); 0 if unreadable.
std::size_t process_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0)
      return std::stoul(line.substr(sizeof("Threads:") - 1));
  }
  return 0;
}

// The migration tests below speak the wire protocol over raw transports:
// PredictionClient rewrites session ids to client-local handles and heals
// UNKNOWN_SESSION by replaying HELLO, which would mask exactly the
// server-side semantics under test (true ids, shared state, hard
// invalidation).
std::unique_ptr<Transport> raw_connection(std::uint16_t port) {
  return loopback_connector(port, TransportDeadlines{2'000, 2'000})();
}

Response raw_round_trip(Transport& transport, const Request& request) {
  send_frame(transport, serialize_request(request));
  const auto frame = recv_frame(transport);
  if (!frame) throw ConnectionError("server closed connection");
  return parse_response(*frame);
}

// Sessions are addressed by id, not by connection: a session opened on one
// connection is fully usable — and closable — from any other.
TEST(PredictionService, SessionMigratesAcrossConnections) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  const auto a = raw_connection(server.port());
  const auto b = raw_connection(server.port());
  const auto c = raw_connection(server.port());

  const Response hello = raw_round_trip(*a, HelloRequest{features(), 1.0});
  const auto* session = std::get_if<SessionResponse>(&hello);
  ASSERT_NE(session, nullptr);
  const std::uint64_t id = session->session_id;

  const Response obs = raw_round_trip(*b, ObserveRequest{id, 5.0});
  const auto* forecast = std::get_if<PredictionResponse>(&obs);
  ASSERT_NE(forecast, nullptr);
  EXPECT_DOUBLE_EQ(forecast->mbps, 6.0);

  const Response pred = raw_round_trip(*c, PredictRequest{id, 3});
  const auto* direct = std::get_if<PredictionResponse>(&pred);
  ASSERT_NE(direct, nullptr);
  EXPECT_DOUBLE_EQ(direct->mbps, 8.0);

  // BYE from a fourth connection invalidates the session everywhere.
  const auto d = raw_connection(server.port());
  EXPECT_TRUE(std::holds_alternative<OkResponse>(
      raw_round_trip(*d, ByeRequest{id})));
  const Response gone = raw_round_trip(*a, ObserveRequest{id, 1.0});
  const auto* err = std::get_if<ErrorResponse>(&gone);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, WireErrorCode::kUnknownSession);
}

// A migrated session keeps the model that created it even when the server
// hot-swaps mid-lifetime (the table entry pins the owner); new sessions pick
// up the new model.
TEST(PredictionService, MigratedSessionSurvivesModelSwap) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  const auto a = raw_connection(server.port());
  const Response hello = raw_round_trip(*a, HelloRequest{features(), 1.0});
  const std::uint64_t id = std::get<SessionResponse>(hello).session_id;

  server.swap_model(std::make_shared<SwitchableModel>());

  // EchoPlusOne semantics (last + 1) persist for the pinned session, even
  // when touched from a fresh connection after the swap.
  const auto b = raw_connection(server.port());
  const Response obs = raw_round_trip(*b, ObserveRequest{id, 5.0});
  EXPECT_DOUBLE_EQ(std::get<PredictionResponse>(obs).mbps, 6.0);

  // Switchable semantics (predict == last) apply to sessions born after.
  const Response fresh_hello = raw_round_trip(*b, HelloRequest{features(), 1.0});
  const std::uint64_t fresh = std::get<SessionResponse>(fresh_hello).session_id;
  EXPECT_NE(fresh, id);
  const Response fresh_obs = raw_round_trip(*b, ObserveRequest{fresh, 5.0});
  EXPECT_DOUBLE_EQ(std::get<PredictionResponse>(fresh_obs).mbps, 5.0);
}

TEST(PredictionService, SessionMigrationCoherentUnderConcurrentSwaps) {
  PredictionServer server(std::make_shared<EchoPlusOneModel>());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.swap_model(std::make_shared<EchoPlusOneModel>());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kWorkers = 4;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&server, &failures, w] {
      try {
        for (int round = 0; round < 10; ++round) {
          // Every verb of the lifecycle rides a different connection.
          const auto opener = raw_connection(server.port());
          const auto toucher = raw_connection(server.port());
          const auto closer = raw_connection(server.port());
          const Response hello = raw_round_trip(
              *opener, HelloRequest{features(), static_cast<double>(w)});
          const std::uint64_t id = std::get<SessionResponse>(hello).session_id;
          for (int i = 0; i < 5; ++i) {
            const double sample = 1.0 + (w + i) % 7;
            const Response obs =
                raw_round_trip(*toucher, ObserveRequest{id, sample});
            if (std::get<PredictionResponse>(obs).mbps != sample + 1.0)
              ++failures;
          }
          if (!std::holds_alternative<OkResponse>(
                  raw_round_trip(*closer, ByeRequest{id})))
            ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  EXPECT_EQ(failures.load(), 0);
}

// The regression the worker pool exists to pin down: serving threads are a
// function of --io-threads, never of how many connections come and go.
TEST(PredictionService, WorkerPoolKeepsThreadCountFixedUnderChurn) {
  ServerConfig config;
  config.io_threads = 4;

  const std::size_t before = process_thread_count();
  ASSERT_GT(before, 0u) << "/proc/self/status unreadable";

  PredictionServer server(std::make_shared<EchoPlusOneModel>(), config);
  EXPECT_EQ(server.config().io_threads, 4u);
  const std::size_t budget = before + config.io_threads + 1;  // pool + accept
  EXPECT_LE(process_thread_count(), budget);

  std::size_t peak = 0;
  for (int i = 0; i < 500; ++i) {
    PredictionClient client(server.port());
    const SessionResponse session = client.hello(features(), 1.0);
    client.observe(session.session_id, 1.0);
    // Half the connections say BYE, half abandon their session outright;
    // either way the connection itself churns (client destructor closes it).
    if (i % 2 == 0) client.bye(session.session_id);
    if (i % 16 == 0) peak = std::max(peak, process_thread_count());
  }
  peak = std::max(peak, process_thread_count());
  EXPECT_LE(peak, budget)
      << "thread count grew with connection churn — thread-per-connection is back";
  EXPECT_GE(server.requests_handled(), 1000u);
}

}  // namespace
}  // namespace cs2p
