// Tests for the data-driven feature-set selection (core/feature_selector.h).

#include "core/feature_selector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cs2p {
namespace {

/// Builds a training set where throughput is fully determined by the City
/// feature (two cities at far-apart levels), with enough sessions per city
/// to pass the min-cluster-size threshold. The ISP feature is shared, so an
/// ISP-only cluster mixes both levels and predicts poorly.
Dataset city_determined_dataset(std::size_t per_city, double noise_seed = 3.0) {
  Dataset train;
  Rng rng(static_cast<std::uint64_t>(noise_seed));
  std::int64_t id = 0;
  for (const auto& [city, level] :
       std::vector<std::pair<std::string, double>>{{"low-city", 1.0},
                                                   {"high-city", 8.0}}) {
    for (std::size_t i = 0; i < per_city; ++i) {
      Session s;
      s.id = id++;
      s.features = {"ISP0", "AS0", "P0", city, "S0", "Pfx-" + city};
      s.start_hour = rng.uniform(0.0, 24.0);
      const double w = level * (1.0 + rng.uniform(-0.05, 0.05));
      s.throughput_mbps = {w, w, w};
      train.add(s);
    }
  }
  return train;
}

TEST(FeatureSelector, PrefersTheDiscriminativeFeature) {
  const Dataset train = city_determined_dataset(60);
  const ClusterIndex index(train, enumerate_candidates());
  FeatureSelectorConfig config;
  config.min_cluster_size = 10;
  const FeatureSelector selector(index, config);

  const SelectionResult result =
      selector.select(train.sessions()[0].features, 12.0);
  ASSERT_TRUE(result.found);
  const CandidateSpec chosen = index.candidates()[result.candidate_id];
  // Any usable candidate must include a city-determining feature (City or
  // the per-city prefix); ISP-only candidates mix both levels.
  EXPECT_TRUE(mask_contains(chosen.mask, FeatureId::kCity) ||
              mask_contains(chosen.mask, FeatureId::kClientPrefix))
      << candidate_to_string(chosen);
  EXPECT_LT(result.estimated_error, 0.2);
}

TEST(FeatureSelector, ErrorTableMarksSmallClustersUnusable) {
  const Dataset train = city_determined_dataset(5);  // below threshold
  const ClusterIndex index(train, enumerate_candidates());
  FeatureSelectorConfig config;
  config.min_cluster_size = 50;
  const FeatureSelector selector(index, config);
  for (std::size_t c = 0; c < index.num_candidates(); ++c)
    EXPECT_TRUE(std::isinf(selector.error_entry(c, 0)));
}

TEST(FeatureSelector, FallsBackWhenNothingUsable) {
  const Dataset train = city_determined_dataset(5);
  const ClusterIndex index(train, enumerate_candidates());
  FeatureSelectorConfig config;
  config.min_cluster_size = 50;
  const FeatureSelector selector(index, config);
  const SelectionResult result =
      selector.select(train.sessions()[0].features, 12.0);
  EXPECT_FALSE(result.found);
}

TEST(FeatureSelector, UnseenFeatureValuesFallBack) {
  const Dataset train = city_determined_dataset(60);
  const ClusterIndex index(train, enumerate_candidates());
  const FeatureSelector selector(index, {});
  SessionFeatures alien = {"ISP-never", "AS-never", "P-never", "C-never",
                           "S-never", "Pfx-never"};
  const SelectionResult result = selector.select(alien, 12.0);
  EXPECT_FALSE(result.found);
}

TEST(FeatureSelector, ErrorEntriesReflectClusterQuality) {
  const Dataset train = city_determined_dataset(60);
  const ClusterIndex index(train, enumerate_candidates());
  FeatureSelectorConfig config;
  config.min_cluster_size = 10;
  const FeatureSelector selector(index, config);

  // Locate the ISP-only any-time candidate and the City-only any-time one.
  std::size_t isp_only = 0, city_only = 0;
  for (std::size_t c = 0; c < index.num_candidates(); ++c) {
    const auto& spec = index.candidates()[c];
    if (spec.window != TimeGranularity::kAll) continue;
    if (spec.mask == (1U << static_cast<unsigned>(FeatureId::kIsp))) isp_only = c;
    if (spec.mask == (1U << static_cast<unsigned>(FeatureId::kCity))) city_only = c;
  }
  // For any session, the city-only candidate predicts nearly exactly; the
  // ISP-only candidate straddles the two levels.
  double isp_err = 0.0, city_err = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    isp_err += selector.error_entry(isp_only, i);
    city_err += selector.error_entry(city_only, i);
  }
  EXPECT_LT(city_err, isp_err);
}

TEST(FeatureSelector, SelectionIsDeterministic) {
  const Dataset train = city_determined_dataset(40);
  const ClusterIndex index(train, enumerate_candidates());
  FeatureSelectorConfig config;
  config.min_cluster_size = 10;
  const FeatureSelector selector(index, config);
  const auto a = selector.select(train.sessions()[3].features, 9.0);
  const auto b = selector.select(train.sessions()[3].features, 9.0);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.candidate_id, b.candidate_id);
}

}  // namespace
}  // namespace cs2p
