// Tests for the linear QoE model (qoe/qoe.h).

#include "qoe/qoe.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

QoeParams unit_params() {
  QoeParams p;
  p.lambda = 1.0;
  p.mu = 10.0;
  p.mu_s = 5.0;
  return p;
}

TEST(Qoe, SeriesFormHandComputed) {
  const std::vector<double> bitrates = {1000.0, 2000.0, 2000.0};
  const std::vector<double> rebuffer = {0.0, 1.0, 0.0};
  // quality 5000, switching |2000-1000| = 1000, rebuf 1 * 10, startup 2 * 5.
  EXPECT_DOUBLE_EQ(qoe_from_series(bitrates, rebuffer, 2.0, unit_params()),
                   5000.0 - 1000.0 - 10.0 - 10.0);
}

TEST(Qoe, SeriesSizeMismatchThrows) {
  EXPECT_THROW(qoe_from_series(std::vector<double>{1.0},
                               std::vector<double>{0.0, 0.0}, 0.0),
               std::invalid_argument);
}

TEST(Qoe, BreakdownMatchesSeriesForm) {
  PlaybackResult playback;
  playback.startup_delay_seconds = 2.0;
  for (double bitrate : {1000.0, 2000.0, 2000.0}) {
    ChunkRecord c;
    c.bitrate_kbps = bitrate;
    playback.chunks.push_back(c);
  }
  playback.chunks[1].rebuffer_seconds = 1.0;
  const QoeBreakdown out = compute_qoe(playback, unit_params());
  const std::vector<double> bitrates = {1000.0, 2000.0, 2000.0};
  const std::vector<double> rebuffer = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(out.total, qoe_from_series(bitrates, rebuffer, 2.0, unit_params()));
}

TEST(Qoe, ComponentFields) {
  PlaybackResult playback;
  playback.startup_delay_seconds = 0.5;
  const double bitrates[] = {600.0, 600.0, 1000.0, 600.0};
  for (double b : bitrates) {
    ChunkRecord c;
    c.bitrate_kbps = b;
    playback.chunks.push_back(c);
  }
  playback.chunks[2].rebuffer_seconds = 2.0;
  const QoeBreakdown out = compute_qoe(playback, unit_params());
  EXPECT_DOUBLE_EQ(out.quality_sum_kbps, 2800.0);
  EXPECT_DOUBLE_EQ(out.avg_bitrate_kbps, 700.0);
  EXPECT_EQ(out.num_switches, 2u);
  EXPECT_DOUBLE_EQ(out.switching_penalty_kbps, 800.0);
  EXPECT_DOUBLE_EQ(out.rebuffer_seconds, 2.0);
  EXPECT_DOUBLE_EQ(out.good_ratio, 0.75);
  EXPECT_DOUBLE_EQ(out.startup_seconds, 0.5);
}

TEST(Qoe, EmptyPlayback) {
  const QoeBreakdown out = compute_qoe(PlaybackResult{});
  EXPECT_DOUBLE_EQ(out.total, 0.0);
  EXPECT_DOUBLE_EQ(out.avg_bitrate_kbps, 0.0);
  EXPECT_DOUBLE_EQ(out.good_ratio, 0.0);
}

TEST(Qoe, NoSwitchNoPenalty) {
  PlaybackResult playback;
  for (int i = 0; i < 5; ++i) {
    ChunkRecord c;
    c.bitrate_kbps = 3000.0;
    playback.chunks.push_back(c);
  }
  const QoeBreakdown out = compute_qoe(playback, unit_params());
  EXPECT_EQ(out.num_switches, 0u);
  EXPECT_DOUBLE_EQ(out.switching_penalty_kbps, 0.0);
  EXPECT_DOUBLE_EQ(out.good_ratio, 1.0);
}

TEST(Qoe, DefaultParamsPenalizeRebufferHarderThanStartup) {
  const QoeParams defaults;
  EXPECT_GT(defaults.mu, defaults.mu_s);
  EXPECT_DOUBLE_EQ(defaults.lambda, 1.0);
}

}  // namespace
}  // namespace cs2p
