// Tests for the ABR controllers (abr/controllers.h, abr/mpc.h).

#include <gtest/gtest.h>

#include "abr/controllers.h"
#include "abr/mpc.h"

namespace cs2p {
namespace {

VideoSpec ladder_video() {
  VideoSpec video;
  video.bitrates_kbps = {350.0, 600.0, 1000.0, 2000.0, 3000.0};
  video.chunk_seconds = 6.0;
  video.num_chunks = 10;
  video.buffer_capacity_seconds = 30.0;
  return video;
}

/// Predictor stub with scripted values.
class Scripted final : public SessionPredictor {
 public:
  Scripted(std::optional<double> initial, double midstream)
      : initial_(initial), midstream_(midstream) {}
  std::optional<double> predict_initial() const override { return initial_; }
  double predict(unsigned) const override { return midstream_; }
  void observe(double) override {}

 private:
  std::optional<double> initial_;
  double midstream_;
};

AbrState midstream_state(SessionPredictor* predictor, double buffer,
                         int last_index, double last_throughput) {
  AbrState state;
  state.chunk_index = 3;
  state.buffer_seconds = buffer;
  state.last_bitrate_index = last_index;
  state.last_throughput_mbps = last_throughput;
  state.predictor = predictor;
  return state;
}

TEST(HighestSustainable, LadderWalk) {
  const VideoSpec video = ladder_video();
  EXPECT_EQ(highest_sustainable(video, 100.0), 0u);   // below the ladder
  EXPECT_EQ(highest_sustainable(video, 600.0), 1u);   // exact match
  EXPECT_EQ(highest_sustainable(video, 1999.0), 2u);
  EXPECT_EQ(highest_sustainable(video, 99999.0), 4u);
}

TEST(FixedController, ClampedToLadder) {
  FixedBitrateController fixed(99);
  EXPECT_EQ(fixed.select_bitrate(AbrState{}, ladder_video()), 4u);
}

TEST(RateBased, UsesInitialPredictionForFirstChunk) {
  Scripted predictor(2.5, 0.0);  // 2.5 Mbps initial forecast
  RateBasedController rb;
  AbrState state;
  state.chunk_index = 0;
  state.predictor = &predictor;
  EXPECT_EQ(rb.select_bitrate(state, ladder_video()), 3u);  // 2000 kbps
}

TEST(RateBased, ColdStartWithoutPredictionIsLowest) {
  Scripted predictor(std::nullopt, 0.0);
  RateBasedController rb;
  AbrState state;
  state.chunk_index = 0;
  state.predictor = &predictor;
  EXPECT_EQ(rb.select_bitrate(state, ladder_video()), 0u);
}

TEST(RateBased, MidstreamFollowsForecast) {
  Scripted predictor(std::nullopt, 1.05);
  RateBasedController rb;
  EXPECT_EQ(rb.select_bitrate(midstream_state(&predictor, 10.0, 2, 1.0),
                              ladder_video()),
            2u);  // 1000 kbps under 1050 kbps forecast
}

TEST(RateBased, SafetyFactorScales) {
  Scripted predictor(std::nullopt, 1.05);
  RateBasedController conservative(0.5);
  EXPECT_EQ(conservative.select_bitrate(midstream_state(&predictor, 10.0, 2, 1.0),
                                        ladder_video()),
            0u);  // 525 kbps budget -> 350
}

TEST(RateBased, NoPredictorFallsBackToLastThroughput) {
  RateBasedController rb;
  EXPECT_EQ(rb.select_bitrate(midstream_state(nullptr, 10.0, 2, 2.1),
                              ladder_video()),
            3u);
}

TEST(BufferBased, ReservoirCushionMapping) {
  BufferBasedController bb(5.0, 20.0);
  const VideoSpec video = ladder_video();
  EXPECT_EQ(bb.select_bitrate(midstream_state(nullptr, 2.0, 0, 1.0), video), 0u);
  EXPECT_EQ(bb.select_bitrate(midstream_state(nullptr, 26.0, 0, 1.0), video), 4u);
  // Mid-cushion: linear interpolation.
  const std::size_t mid = bb.select_bitrate(midstream_state(nullptr, 15.0, 0, 1.0),
                                            video);
  EXPECT_EQ(mid, 2u);
}

TEST(BufferBased, FirstChunkIsLowest) {
  BufferBasedController bb;
  AbrState state;
  state.chunk_index = 0;
  EXPECT_EQ(bb.select_bitrate(state, ladder_video()), 0u);
}

TEST(Mpc, InitialChunkUsesPrediction) {
  Scripted predictor(3.5, 0.0);
  MpcController mpc;
  AbrState state;
  state.chunk_index = 0;
  state.predictor = &predictor;
  EXPECT_EQ(mpc.select_bitrate(state, ladder_video()), 4u);  // 3000 < 3500
}

TEST(Mpc, AccuratePredictionRidesNearCapacity) {
  // Forecast 2.1 Mbps, 8-s buffer: 3000 kbps would stall inside the horizon
  // (8.6-s downloads vs 6-s chunks); 2000 kbps is sustainable; anything
  // lower leaves QoE on the table. Note: with a buffer deeper than the
  // lookahead can drain, plain MPC knowingly over-commits — that horizon
  // myopia is inherent to FastMPC and exercised in the QoE benches.
  Scripted predictor(std::nullopt, 2.1);
  MpcController mpc;
  EXPECT_EQ(mpc.select_bitrate(midstream_state(&predictor, 8.0, 3, 2.1),
                               ladder_video()),
            3u);
}

TEST(Mpc, LowForecastBacksOff) {
  Scripted predictor(std::nullopt, 0.4);
  MpcController mpc;
  const std::size_t choice = mpc.select_bitrate(
      midstream_state(&predictor, 8.0, 3, 0.4), ladder_video());
  EXPECT_LE(choice, 1u);
}

TEST(Mpc, SwitchingPenaltySmoothsOneEpochBlips) {
  // The forecast dips slightly below the current rung with a moderate
  // buffer: holding 2000 kbps on a 1.9 Mbps forecast drains ~0.3 s per
  // chunk and never stalls within the horizon, and dropping a rung would
  // pay the switching penalty for nothing.
  Scripted predictor(std::nullopt, 1.9);
  MpcController mpc;
  const std::size_t choice = mpc.select_bitrate(
      midstream_state(&predictor, 10.0, 3, 1.9), ladder_video());
  EXPECT_EQ(choice, 3u);
}

TEST(Mpc, MidstreamWithoutPredictorThrows) {
  MpcController mpc;
  EXPECT_THROW(
      mpc.select_bitrate(midstream_state(nullptr, 10.0, 2, 1.0), ladder_video()),
      std::invalid_argument);
}

TEST(Mpc, EmptyLadderThrows) {
  MpcController mpc;
  VideoSpec video = ladder_video();
  video.bitrates_kbps.clear();
  Scripted predictor(1.0, 1.0);
  EXPECT_THROW(mpc.select_bitrate(midstream_state(&predictor, 10.0, 0, 1.0), video),
               std::invalid_argument);
}

TEST(RobustMpc, DiscountGrowsWithObservedError) {
  // Scripted predictor massively over-predicts; RobustMPC must end up more
  // conservative than plain MPC after a few chunks of feedback.
  MpcConfig robust_config;
  robust_config.robust = true;
  MpcController robust(robust_config);
  MpcController plain;

  Scripted predictor(std::nullopt, 3.2);  // forecast 3.2 Mbps every chunk
  // Simulate 4 decision rounds where the realized throughput was only 1.0.
  std::size_t robust_choice = 0, plain_choice = 0;
  for (int round = 0; round < 4; ++round) {
    robust_choice =
        robust.select_bitrate(midstream_state(&predictor, 10.0, 3, 1.0),
                              ladder_video());
    plain_choice = plain.select_bitrate(midstream_state(&predictor, 10.0, 3, 1.0),
                                        ladder_video());
  }
  EXPECT_LT(robust_choice, plain_choice);
}

TEST(RobustMpc, ResetClearsErrorWindow) {
  MpcConfig config;
  config.robust = true;
  MpcController mpc(config);
  Scripted predictor(std::nullopt, 3.2);
  for (int round = 0; round < 4; ++round)
    mpc.select_bitrate(midstream_state(&predictor, 10.0, 3, 1.0), ladder_video());
  mpc.reset();
  // After reset there is no error history: first decision trusts the
  // forecast fully again (same as a fresh controller).
  MpcController fresh(config);
  EXPECT_EQ(mpc.select_bitrate(midstream_state(&predictor, 10.0, 3, 1.0),
                               ladder_video()),
            fresh.select_bitrate(midstream_state(&predictor, 10.0, 3, 1.0),
                                 ladder_video()));
}

TEST(Mpc, NameReflectsMode) {
  MpcConfig config;
  EXPECT_EQ(MpcController(config).name(), "MPC");
  config.robust = true;
  EXPECT_EQ(MpcController(config).name(), "RobustMPC");
}

}  // namespace
}  // namespace cs2p
