// cs2p_serve — run the CS2P prediction service on a trace dataset.
//
//   cs2p_serve --data traces.csv --port 9000
//              --snapshot-dir /var/lib/cs2p --reload-interval 86400
//
// Trains a CS2P engine on the training days and serves the wire protocol of
// net/wire.h until SIGINT/SIGTERM. Clients can drive per-session prediction
// (HELLO/OBSERVE/PREDICT) or download compact models (MODEL) for the
// client-side mode.
//
// Model lifecycle (DESIGN.md §9):
//   - With --snapshot-dir, startup restores the engine from
//     <dir>/cs2p_engine.snapshot when it matches the config and dataset
//     (restart latency = snapshot load, not a full Baum-Welch pass); any
//     corrupt/mismatched snapshot falls back to fresh training and is
//     atomically overwritten.
//   - SIGHUP, or every --reload-interval seconds, re-reads --data, retrains
//     a fresh engine in the serving process, snapshots it, and hot-swaps it
//     into the server. In-flight sessions finish on their old model; new
//     sessions get the fresh one. A failed reload keeps the current model.
//
// Prediction guardrails (DESIGN.md §10):
//   - With --guardrail, every session runs behind the sanitizer + surprise
//     monitor + fallback chain of GuardedSessionPredictor, and PRED replies
//     carry serve-flags explaining the serving path.
//   - With --drift-reload (implies the guardrail), a cluster whose live
//     sessions trip their guardrails in quorum triggers an early retrain +
//     hot-swap, same path as SIGHUP — the drifted cluster serves the global
//     fallback in the meantime.
//
// Continuous training (DESIGN.md §15):
//   - With --continuous-train (implies the guardrail), every completed
//     session (BYE or eviction) streams into per-cluster reservoirs and a
//     background trainer retrains clusters whose statistics moved. Candidate
//     models must beat the incumbent on a held-out canary slice by
//     --canary-margin before they are hot-swapped; accepted generations
//     serve under a --probation-ms window in which a drift-quorum trip
//     rolls the cluster back to its parent generation automatically.
//   - Interval reloads skip the full retrain when the dataset fingerprint
//     is unchanged (SIGHUP and drift retrains always run — they exist to
//     rebuild state, not to pick up new rows).
//
// Telemetry (DESIGN.md §11):
//   - One process-wide metrics registry is wired through the engine, the
//     guardrails and the server, so a STATS scrape (or cs2p_stats) sees the
//     whole process. --metrics-interval N dumps the exposition to stdout
//     every N seconds; the final dump runs on the SIGINT path *before*
//     server teardown, so a hung connection cannot swallow the last stats.
//   - --trace-log FILE --trace-sample R appends the JSONL prediction trace
//     of a deterministic R-fraction of sessions; flushed on every metrics
//     tick and on the signal path.
//
// Replication (DESIGN.md §13):
//   - --peers P1,P2 pushes every built model's checksummed snapshot to the
//     replicas on those ports over the SYNC verbs; each replica verifies
//     byte-for-byte before hot-swapping, so the whole tier serves the same
//     model without shared disk.
//   - --sync-from P bootstraps this replica by pulling the snapshot
//     published on port P (falling back to local training), so a fresh
//     replica joins the tier without a Baum-Welch pass.
//   - --accept-sync 0 refuses shipped snapshots (trainer-only trust).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/model_store.h"
#include "core/trainer.h"
#include "dataset/dataset.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/cli.h"

namespace {
std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{false};
std::atomic<bool> g_reload{false};
void handle_signal(int) { g_stop.store(true); }
// SIGTERM = orchestrated restart: drain first (stop accepting, migrate
// sessions off via the kDraining hint), hard-stop only at the deadline.
// SIGINT stays the immediate stop it always was.
void handle_sigterm(int) { g_drain.store(true); }
void handle_sighup(int) { g_reload.store(true); }

/// "9001,9002" -> {9001, 9002}; throws on junk so a typo'd replica list
/// fails at startup, not at the first push.
std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const long port = std::stol(token);
    if (port <= 0 || port > 65535)
      throw std::runtime_error("bad port in peer list: " + token);
    ports.push_back(static_cast<std::uint16_t>(port));
  }
  return ports;
}
}  // namespace

int main(int argc, char** argv) try {
  using namespace cs2p;
  cli::ArgParser args("cs2p_serve", "serve CS2P predictions over TCP");
  args.add_option("data", "input CSV with training sessions", "traces.csv");
  args.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "0");
  args.add_option("train-days", "use sessions with day < this for training", "1");
  args.add_option("hmm-states", "HMM state count", "6");
  args.add_option("warm-up", "pre-train cluster HMMs before serving (1/0)", "1");
  args.add_option("max-connections", "reject connections beyond this cap", "64");
  args.add_option("io-threads",
                  "serving worker threads; each runs an event loop over its "
                  "share of the connections (0 = hardware concurrency)", "0");
  args.add_option("session-shards",
                  "session-table shard count, rounded up to a power of two "
                  "(0 = default 16)", "0");
  args.add_option("idle-timeout-ms", "close connections idle this long", "30000");
  args.add_option("session-ttl-ms", "evict sessions untouched this long", "120000");
  args.add_option("max-sample-mbps", "reject OBSERVE samples above this", "10000");
  args.add_option("snapshot-dir",
                  "crash-safe model store: restore on start, persist after "
                  "(re)training (empty = off)", "");
  args.add_option("reload-interval",
                  "retrain from --data and hot-swap every N seconds (0 = "
                  "only on SIGHUP)", "0");
  args.add_option("guardrail",
                  "wrap sessions in prediction guardrails (sanitizer + "
                  "surprise monitor + fallback chain) (1/0)", "0");
  args.add_option("drift-reload",
                  "retrain + hot-swap when a cluster drifts (implies "
                  "--guardrail 1) (1/0)", "0");
  args.add_option("continuous-train",
                  "stream completed sessions into a background trainer with "
                  "a canary gate + probation rollback (implies --guardrail "
                  "1) (1/0)", "0");
  args.add_option("canary-margin",
                  "nats/observation a candidate model must win the held-out "
                  "log-likelihood canary by before it is hot-swapped", "0.05");
  args.add_option("probation-ms",
                  "post-swap probation window; a drift-quorum trip inside it "
                  "rolls the cluster back to its parent generation", "5000");
  args.add_option("reservoir-size",
                  "completed-session sequences retained per cluster for "
                  "retraining + canary holdout", "64");
  args.add_option("lenient-ingest",
                  "skip invalid rows in --data instead of aborting (1/0)", "0");
  args.add_option("metrics-interval",
                  "dump the metrics exposition to stdout every N seconds "
                  "(0 = only on shutdown)", "0");
  args.add_option("trace-log",
                  "append the JSONL per-session prediction trace to this "
                  "file (empty = off)", "");
  args.add_option("trace-sample",
                  "fraction of sessions traced into --trace-log, in [0, 1]",
                  "1.0");
  args.add_option("trace-seed",
                  "session-sampling hash seed (same seed + rate = same "
                  "sessions traced)", "1555217942");
  args.add_option("peers",
                  "comma-separated loopback ports of serving replicas; every "
                  "built model's snapshot is SYNC-pushed to each of them "
                  "(empty = off)", "");
  args.add_option("sync-from",
                  "bootstrap the model by SYNC-fetching a snapshot from the "
                  "replica on this loopback port instead of training; falls "
                  "back to local training on failure (0 = off)", "0");
  args.add_option("accept-sync",
                  "accept SYNC-shipped snapshots from a trainer and hot-swap "
                  "them after verification (1/0)", "1");
  args.add_option("drain-deadline-ms",
                  "on SIGTERM, drain gracefully (stop accepting, hint "
                  "clients to migrate) and exit once all sessions are gone "
                  "or this deadline passes", "10000");
  args.add_option("shed-utilization",
                  "shed new HELLOs when a worker's event-loop utilization "
                  "EWMA reaches this fraction (0 = off)", "0");
  args.add_option("shed-pending",
                  "shed new HELLOs when a worker has this many replies "
                  "queued (0 = off)", "0");
  args.add_option("retry-after-ms",
                  "backoff hint stamped on OVERLOADED/SHUTTING_DOWN replies",
                  "250");
  args.add_option("write-budget-bytes",
                  "per-connection queued-reply budget; connections over it "
                  "stop being read until they drain (0 = default 256 KiB)",
                  "0");
  args.add_option("write-stall-timeout-ms",
                  "close a connection whose queued replies made no flush "
                  "progress this long (slow reader; 0 = off)", "10000");
  args.add_option("brownout-enter-ticks",
                  "consecutive 20 ms pressure ticks before brownout level 1 "
                  "(level 2 at 3x); 0 disables the brownout controller", "0");
  if (!args.parse(argc, argv)) return 1;

  // The one registry of the process: engine(s), guardrails and server all
  // report here, and the STATS verb scrapes it.
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::shared_ptr<obs::TraceLog> trace;
  if (!args.get("trace-log").empty()) {
    obs::TraceLog::Config trace_config;
    trace_config.path = args.get("trace-log");
    trace_config.sample_rate = args.get_double("trace-sample");
    trace_config.seed = static_cast<std::uint64_t>(args.get_long("trace-seed"));
    trace = std::make_shared<obs::TraceLog>(trace_config);
  }

  Cs2pConfig config;
  config.metrics = metrics;
  config.hmm.num_states = static_cast<std::size_t>(args.get_long("hmm-states"));
  const bool drift_reload = args.get_long("drift-reload") != 0;
  const bool continuous_train = args.get_long("continuous-train") != 0;
  // Continuous training leans on the drift quorum for rollback, so it
  // forces the guardrail on just like --drift-reload does.
  config.guardrail.enabled =
      args.get_long("guardrail") != 0 || drift_reload || continuous_train;
  const bool lenient_ingest = args.get_long("lenient-ingest") != 0;
  const int train_days = static_cast<int>(args.get_long("train-days"));
  const bool warm_up = args.get_long("warm-up") != 0;
  const std::string snapshot_dir = args.get("snapshot-dir");
  const std::string snapshot_path =
      snapshot_dir.empty() ? "" : snapshot_dir + "/cs2p_engine.snapshot";
  const long reload_interval_s = args.get_long("reload-interval");

  auto load_dataset = [&]() {
    if (!lenient_ingest) return Dataset::load_csv(args.get("data"));
    IngestStats ingest;
    Dataset dataset = Dataset::load_csv_lenient(args.get("data"), ingest);
    // Skip reasons land in the registry (one series per reason) so a scrape
    // after a reload shows what the last ingest dropped, not just stdout.
    metrics->counter("cs2p_ingest_rows_total", {{"outcome", "loaded"}})
        .inc(ingest.rows_loaded);
    metrics->counter("cs2p_ingest_rows_total", {{"outcome", "skipped"}})
        .inc(ingest.rows_skipped);
    const auto skip = [&](const char* reason, std::size_t n) {
      if (n > 0)
        metrics->counter("cs2p_ingest_skipped_rows_total", {{"reason", reason}})
            .inc(n);
    };
    skip("unparseable", ingest.unparseable_series);
    skip("non_finite", ingest.non_finite_samples);
    skip("negative", ingest.negative_samples);
    skip("bad_epoch", ingest.bad_epoch_seconds);
    if (ingest.rows_skipped > 0) {
      std::printf("ingest: skipped %zu/%zu rows (%zu unparseable, %zu "
                  "non-finite, %zu negative, %zu bad epoch)\n",
                  ingest.rows_skipped, ingest.rows_loaded + ingest.rows_skipped,
                  ingest.unparseable_series, ingest.non_finite_samples,
                  ingest.negative_samples, ingest.bad_epoch_seconds);
    }
    return dataset;
  };

  // Builds a model from the (possibly updated) dataset on disk; used for
  // both the initial model and every reload. `use_snapshot` is true only at
  // startup. Interval reloads pass `skip_if_unchanged`: they exist to pick
  // up new rows, so when the training split hashes to the fingerprint the
  // serving engine was built from, the retrain is skipped (returns null)
  // instead of burning a Baum-Welch pass to rebuild the same model. SIGHUP
  // and drift retrains never skip — they rebuild state on purpose (a drift
  // retrain must clear the drift marks even on identical data).
  std::uint64_t served_dataset_fp = 0;
  auto build_model = [&](bool use_snapshot, bool skip_if_unchanged =
                                                false) -> std::shared_ptr<Cs2pPredictorModel> {
    const Dataset dataset = load_dataset();
    auto [train, test] = dataset.split_by_day(train_days);
    (void)test;
    if (train.empty())
      throw std::runtime_error("no training sessions in " + args.get("data"));
    const std::uint64_t fp = dataset_fingerprint(train);
    if (skip_if_unchanged && fp == served_dataset_fp) {
      std::printf("reload: dataset unchanged, skipped retrain\n");
      return nullptr;
    }
    std::printf("building CS2P engine on %zu sessions...\n", train.size());
    std::string status;
    std::shared_ptr<const Cs2pEngine> engine;
    if (use_snapshot) {
      engine = load_or_train(snapshot_path, std::move(train), config, warm_up,
                             &status);
    } else {
      auto fresh = std::make_shared<Cs2pEngine>(std::move(train), config);
      if (warm_up) fresh->warm_up();
      engine = fresh;
      status = "retrained fresh engine";
      if (!snapshot_path.empty()) {
        try {
          save_snapshot(snapshot_path, *engine);
          status += "; snapshot saved to " + snapshot_path;
        } catch (const SnapshotError& e) {
          status += std::string("; snapshot save failed (") + e.what() + ")";
        }
      }
    }
    std::printf("model: %s\n", status.c_str());
    served_dataset_fp = fp;
    return std::make_shared<Cs2pPredictorModel>(std::move(engine));
  };

  // -- Replication (DESIGN.md §13) ------------------------------------------
  const std::vector<std::uint16_t> peer_ports = parse_ports(args.get("peers"));
  const auto sync_from =
      static_cast<std::uint16_t>(args.get_long("sync-from"));
  const bool accept_sync = args.get_long("accept-sync") != 0;

  // SYNC restore needs the training split (snapshot fingerprints are
  // verified against it); load it once up front when any SYNC path is on.
  std::shared_ptr<const Dataset> sync_training;
  if (accept_sync || sync_from != 0) {
    Dataset dataset = load_dataset();
    auto [train, test] = dataset.split_by_day(train_days);
    (void)test;
    sync_training = std::make_shared<const Dataset>(std::move(train));
  }

  std::shared_ptr<Cs2pPredictorModel> model;
  if (sync_from != 0) {
    try {
      PredictionClient seed(sync_from);
      const std::string bytes = seed.fetch_snapshot();
      auto engine = restore_engine_from_bytes(bytes, *sync_training, config);
      model = std::make_shared<Cs2pPredictorModel>(
          std::shared_ptr<const Cs2pEngine>(std::move(engine)));
      std::printf("model: restored %zu-byte snapshot from replica "
                  "127.0.0.1:%u\n",
                  bytes.size(), sync_from);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "sync: fetch from 127.0.0.1:%u failed (%s), training "
                   "locally\n",
                   sync_from, e.what());
    }
  }
  if (!model) model = build_model(/*use_snapshot=*/true);

  // -- Continuous training (DESIGN.md §15) ----------------------------------
  // The trainer is declared BEFORE the server so the completion hook's
  // target outlives the serving workers that call it; a scope guard declared
  // after the server joins the trainer thread before the server (which the
  // publish hook swaps models into) can be torn down.
  std::mutex model_mutex;  // guards `model`: main loop vs trainer publish
  std::unique_ptr<ContinuousTrainer> trainer;
  if (continuous_train) {
    TrainerConfig trainer_config;
    trainer_config.canary_margin = args.get_double("canary-margin");
    trainer_config.probation_ms =
        static_cast<std::uint64_t>(args.get_long("probation-ms"));
    trainer_config.reservoir_size =
        static_cast<std::size_t>(args.get_long("reservoir-size"));
    trainer = std::make_unique<ContinuousTrainer>(model->engine_ptr(),
                                                  trainer_config);
  }

  ServerConfig server_config;
  server_config.max_connections =
      static_cast<std::size_t>(args.get_long("max-connections"));
  server_config.io_threads = static_cast<std::size_t>(args.get_long("io-threads"));
  server_config.session_shards =
      static_cast<std::size_t>(args.get_long("session-shards"));
  server_config.idle_timeout_ms = static_cast<int>(args.get_long("idle-timeout-ms"));
  server_config.session_ttl_ms = static_cast<int>(args.get_long("session-ttl-ms"));
  server_config.max_sample_mbps =
      static_cast<double>(args.get_long("max-sample-mbps"));
  server_config.metrics = metrics;
  server_config.trace = trace;
  server_config.shed_utilization = args.get_double("shed-utilization");
  server_config.shed_pending_replies =
      static_cast<std::size_t>(args.get_long("shed-pending"));
  server_config.retry_after_ms =
      static_cast<int>(args.get_long("retry-after-ms"));
  server_config.write_budget_bytes =
      static_cast<std::size_t>(args.get_long("write-budget-bytes"));
  server_config.write_stall_timeout_ms =
      static_cast<int>(args.get_long("write-stall-timeout-ms"));
  server_config.brownout_enter_ticks =
      static_cast<int>(args.get_long("brownout-enter-ticks"));
  const int drain_deadline_ms =
      static_cast<int>(args.get_long("drain-deadline-ms"));
  if (accept_sync) {
    // Decode a SYNC-shipped snapshot against our training split + config;
    // any fingerprint/parse failure throws SnapshotError and the server
    // answers SYNC_REJECTED without touching the served model.
    server_config.sync_apply =
        [sync_training, config](const std::string& bytes)
        -> std::shared_ptr<const PredictorModel> {
      auto engine = restore_engine_from_bytes(bytes, *sync_training, config);
      return std::make_shared<Cs2pPredictorModel>(
          std::shared_ptr<const Cs2pEngine>(std::move(engine)));
    };
  }
  if (trainer) {
    // Both teardown paths (BYE and TTL/drain eviction) land here — the
    // unified complete_session hook — so no completed session's observation
    // history is lost to the trainer.
    ContinuousTrainer* t = trainer.get();
    server_config.on_session_complete = [t](CompletedSession&& done) {
      t->ingest(done.features, done.start_hour, done.observations);
    };
  }

  PredictionServer server(model, server_config,
                          static_cast<std::uint16_t>(args.get_long("port")));
  std::printf("serving on 127.0.0.1:%u (SIGINT to stop, SIGHUP to reload)\n",
              server.port());
  std::printf("limits: %zu connections, %d ms idle timeout, %d ms session TTL\n",
              server_config.max_connections, server_config.idle_timeout_ms,
              server_config.session_ttl_ms);
  std::printf("serving core: %zu io thread(s), %zu session shard(s)\n",
              server.config().io_threads, server.config().session_shards);
  std::printf("overload: %zu B write budget, %d ms stall kick, "
              "drain deadline %d ms (SIGTERM)\n",
              server.config().write_budget_bytes,
              server.config().write_stall_timeout_ms, drain_deadline_ms);
  if (server.config().shed_utilization > 0.0 ||
      server.config().shed_pending_replies > 0)
    std::printf("overload: shed HELLOs at %.2f utilization / %zu queued "
                "replies (retry-after %d ms)\n",
                server.config().shed_utilization,
                server.config().shed_pending_replies,
                server.config().retry_after_ms);
  if (server.config().brownout_enter_ticks > 0)
    std::printf("overload: brownout after %d pressure tick(s)\n",
                server.config().brownout_enter_ticks);
  if (reload_interval_s > 0)
    std::printf("reload: retrain + hot-swap every %ld s\n", reload_interval_s);
  if (config.guardrail.enabled)
    std::printf("guardrail: on%s\n",
                drift_reload ? " (cluster drift triggers retrain)" : "");
  const long metrics_interval_s = args.get_long("metrics-interval");
  if (metrics_interval_s > 0)
    std::printf("metrics: dump every %ld s\n", metrics_interval_s);
  if (trace)
    std::printf("trace: %s (sample rate %.3f)\n",
                trace->config().path.c_str(), trace->config().sample_rate);
  if (accept_sync) std::printf("sync: accepting shipped snapshots\n");
  if (!peer_ports.empty())
    std::printf("sync: pushing snapshots to %zu peer replica(s)\n",
                peer_ports.size());

  // Publish a model's snapshot bytes for SYNCFETCH pulls and push them to
  // every --peers replica. Runs at startup, after every hot-swap, and from
  // the trainer's publish hook; a failed push is that replica's loss, never
  // ours.
  auto push_snapshot_bytes = [&](const std::string& bytes) {
    server.publish_snapshot(bytes);
    for (const std::uint16_t peer_port : peer_ports) {
      try {
        PredictionClient peer(peer_port);
        peer.push_snapshot(bytes);
        std::printf("sync: pushed %zu-byte snapshot to 127.0.0.1:%u\n",
                    bytes.size(), peer_port);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sync: push to 127.0.0.1:%u failed: %s\n",
                     peer_port, e.what());
      }
    }
  };
  auto publish_and_push = [&](const Cs2pPredictorModel& built) -> std::string {
    std::string bytes;
    try {
      bytes = serialize_engine(built.engine());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sync: serialize failed: %s\n", e.what());
      return std::string();
    }
    push_snapshot_bytes(bytes);
    return bytes;
  };
  publish_and_push(*model);

  // Drift-marked clusters already answered with a retrain: a failed reload
  // must not retrigger every poll tick. Atomic because the trainer's publish
  // hook (trainer thread) resets it when a swap clears the drift marks.
  std::atomic<std::size_t> drift_handled{0};

  // Joins the trainer thread on every exit path BEFORE the server (declared
  // above it) is destroyed — the publish hook below swaps models into the
  // server, so the thread must be gone first.
  struct TrainerStopGuard {
    ContinuousTrainer* trainer;
    ~TrainerStopGuard() {
      if (trainer != nullptr) trainer->stop();
    }
  } trainer_stop{trainer.get()};
  if (trainer) {
    trainer->set_publish([&](const std::shared_ptr<const Cs2pEngine>& engine,
                             const std::string& bytes) {
      auto fresh = std::make_shared<Cs2pPredictorModel>(engine);
      server.swap_model(fresh);
      {
        const std::lock_guard<std::mutex> lock(model_mutex);
        model = fresh;
      }
      drift_handled.store(0);  // fresh engines start with clean drift marks
      push_snapshot_bytes(bytes);
      return true;
    });
    trainer->start();
    std::printf("trainer: continuous training on (reservoir %zu, canary "
                "margin %.3f nats, probation %llu ms)\n",
                trainer->config().reservoir_size,
                trainer->config().canary_margin,
                static_cast<unsigned long long>(trainer->config().probation_ms));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_sigterm);
  std::signal(SIGHUP, handle_sighup);

  // One flush point for both sinks: metrics go to stdout, the trace tail to
  // its file. Runs on every --metrics-interval tick and (crucially) on the
  // signal path before server.stop() — a SIGINT while a connection hangs in
  // teardown must not lose the final stats or the buffered trace records.
  auto flush_telemetry = [&](bool dump_metrics) {
    if (dump_metrics) {
      const std::string exposition = metrics->scrape();
      std::fwrite(exposition.data(), 1, exposition.size(), stdout);
      std::fflush(stdout);
    }
    if (trace) trace->flush();
  };

  using Clock = std::chrono::steady_clock;
  auto last_reload = Clock::now();
  auto last_metrics = Clock::now();
  // The model currently served, read consistently against trainer swaps.
  auto current_model = [&] {
    const std::lock_guard<std::mutex> lock(model_mutex);
    return model;
  };
  auto drain_started = Clock::time_point{};
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // Zero-downtime drain (DESIGN.md §14): SIGTERM stops accepting, answers
    // new HELLOs SHUTTING_DOWN, stamps replies kDraining so the client tier
    // migrates, and exits once the session table empties (or the deadline
    // forces the issue). SIGINT remains the immediate stop.
    if (g_drain.load() && drain_started == Clock::time_point{}) {
      drain_started = Clock::now();
      std::printf("drain: SIGTERM received, draining %zu session(s) "
                  "(deadline %d ms)\n",
                  server.session_count(), drain_deadline_ms);
      std::fflush(stdout);
      server.begin_drain();
    }
    if (drain_started != Clock::time_point{}) {
      if (server.wait_drained(0)) {
        std::printf("drain: complete, exiting\n");
        break;
      }
      if (Clock::now() - drain_started >=
          std::chrono::milliseconds(drain_deadline_ms)) {
        std::printf("drain: deadline reached with %zu session(s) remaining, "
                    "exiting\n",
                    server.session_count());
        break;
      }
    }
    if (metrics_interval_s > 0 &&
        Clock::now() - last_metrics >= std::chrono::seconds(metrics_interval_s)) {
      last_metrics = Clock::now();
      flush_telemetry(/*dump_metrics=*/true);
    }
    const bool interval_due =
        reload_interval_s > 0 &&
        Clock::now() - last_reload >= std::chrono::seconds(reload_interval_s);
    bool drift_due = false;
    if (drift_reload) {
      const std::size_t drifted =
          current_model()->engine().drifted_cluster_count();
      if (drifted > drift_handled.load()) {
        std::printf("drift: %zu cluster(s) tripped their quorum, retraining\n",
                    drifted);
        drift_handled.store(drifted);
        drift_due = true;
      }
    }
    const bool manual_reload = g_reload.exchange(false);
    if (!manual_reload && !interval_due && !drift_due) continue;
    last_reload = Clock::now();
    try {
      // Retrain while the old model keeps serving; swap only on success.
      // Only the pure interval trigger may skip on an unchanged dataset:
      // SIGHUP is an operator order and a drift retrain must rebuild state.
      auto fresh = build_model(
          /*use_snapshot=*/false,
          /*skip_if_unchanged=*/interval_due && !manual_reload && !drift_due);
      if (!fresh) continue;  // dataset unchanged, retrain skipped
      server.swap_model(fresh);
      {
        const std::lock_guard<std::mutex> lock(model_mutex);
        model = fresh;  // poll drift on the engine now serving
      }
      drift_handled.store(0);
      const std::string bytes = publish_and_push(*fresh);
      // Hand the reloaded engine to the trainer OUTSIDE model_mutex: its
      // publish hook takes model_mutex on the trainer thread while holding
      // the training lock that set_engine needs.
      if (trainer && !bytes.empty())
        trainer->set_engine(fresh->engine_ptr(), bytes);
      std::printf("hot-swap #%llu complete (%zu live sessions keep their "
                  "old model)\n",
                  static_cast<unsigned long long>(server.models_swapped()),
                  server.session_count());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "reload failed: %s (keeping current model)\n",
                   e.what());
    }
  }
  // Stop the trainer first: its summary below must be final, and the model
  // pointer must stop moving before the stats reads.
  if (trainer) {
    trainer->stop();
    const TrainerStats ts = trainer->stats();
    std::printf("trainer: %llu ingested, %llu retrains, %llu canary accepts, "
                "%llu rejects, %llu rollbacks (generation %llu)\n",
                static_cast<unsigned long long>(ts.sessions_ingested),
                static_cast<unsigned long long>(ts.retrains),
                static_cast<unsigned long long>(ts.canary_accepts),
                static_cast<unsigned long long>(ts.canary_rejects),
                static_cast<unsigned long long>(ts.rollbacks),
                static_cast<unsigned long long>(ts.generation));
  }
  // Final telemetry BEFORE teardown: stop() joins workers, and a hung
  // connection makes that wait — the stats must already be out by then.
  flush_telemetry(/*dump_metrics=*/metrics_interval_s > 0);
  std::printf("\nstopping after %llu requests (%llu model swaps)\n",
              static_cast<unsigned long long>(server.requests_handled()),
              static_cast<unsigned long long>(server.models_swapped()));
  if (config.guardrail.enabled) {
    const EngineStats engine_stats = current_model()->engine().stats();
    std::printf("guardrail: %zu guarded sessions, %zu trips, %zu recoveries, "
                "%zu drifted clusters, %llu degraded replies\n",
                engine_stats.guarded_sessions, engine_stats.guardrail_trips,
                engine_stats.guardrail_recoveries, engine_stats.clusters_drifted,
                static_cast<unsigned long long>(server.degraded_replies()));
  }
  server.stop();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cs2p_serve: %s\n", e.what());
  return 1;
}
