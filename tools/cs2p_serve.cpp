// cs2p_serve — run the CS2P prediction service on a trace dataset.
//
//   cs2p_serve --data traces.csv --port 9000
//
// Trains a CS2P engine on the training days and serves the wire protocol of
// net/wire.h until SIGINT/SIGTERM. Clients can drive per-session prediction
// (HELLO/OBSERVE/PREDICT) or download compact models (MODEL) for the
// client-side mode.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/engine.h"
#include "dataset/dataset.h"
#include "net/server.h"
#include "tools/cli.h"

namespace {
std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) try {
  using namespace cs2p;
  cli::ArgParser args("cs2p_serve", "serve CS2P predictions over TCP");
  args.add_option("data", "input CSV with training sessions", "traces.csv");
  args.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "0");
  args.add_option("train-days", "use sessions with day < this for training", "1");
  args.add_option("hmm-states", "HMM state count", "6");
  args.add_option("warm-up", "pre-train cluster HMMs before serving (1/0)", "1");
  args.add_option("max-connections", "reject connections beyond this cap", "64");
  args.add_option("idle-timeout-ms", "close connections idle this long", "30000");
  args.add_option("session-ttl-ms", "evict sessions untouched this long", "120000");
  args.add_option("max-sample-mbps", "reject OBSERVE samples above this", "10000");
  if (!args.parse(argc, argv)) return 1;

  const Dataset dataset = Dataset::load_csv(args.get("data"));
  auto [train, test] = dataset.split_by_day(static_cast<int>(args.get_long("train-days")));
  (void)test;
  if (train.empty()) {
    std::fprintf(stderr, "no training sessions in %s\n", args.get("data").c_str());
    return 1;
  }

  Cs2pConfig config;
  config.hmm.num_states = static_cast<std::size_t>(args.get_long("hmm-states"));
  std::printf("training CS2P engine on %zu sessions...\n", train.size());
  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train), config);

  if (args.get_long("warm-up") != 0) {
    const std::size_t trained = model->engine().warm_up();
    std::printf("warm-up: %zu cluster models trained\n", trained);
  }

  ServerConfig server_config;
  server_config.max_connections =
      static_cast<std::size_t>(args.get_long("max-connections"));
  server_config.idle_timeout_ms = static_cast<int>(args.get_long("idle-timeout-ms"));
  server_config.session_ttl_ms = static_cast<int>(args.get_long("session-ttl-ms"));
  server_config.max_sample_mbps =
      static_cast<double>(args.get_long("max-sample-mbps"));

  PredictionServer server(model, server_config,
                          static_cast<std::uint16_t>(args.get_long("port")));
  std::printf("serving on 127.0.0.1:%u (SIGINT to stop)\n", server.port());
  std::printf("limits: %zu connections, %d ms idle timeout, %d ms session TTL\n",
              server_config.max_connections, server_config.idle_timeout_ms,
              server_config.session_ttl_ms);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\nstopping after %llu requests\n",
              static_cast<unsigned long long>(server.requests_handled()));
  server.stop();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cs2p_serve: %s\n", e.what());
  return 1;
}
