// Minimal command-line parsing shared by the cs2p_* tools.
//
// Supports --flag value and --flag=value forms, typed accessors with
// defaults, and a generated usage message. Unknown flags are an error so
// typos fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cs2p::cli {

/// One registered option (for the usage text).
struct OptionSpec {
  std::string name;
  std::string help;
  std::string default_value;
};

class ArgParser {
 public:
  /// `describe` registers options up front so usage() is complete and
  /// unknown flags can be rejected.
  ArgParser(std::string program, std::string description);

  /// Registers an option; call before parse().
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");

  /// Parses argv. Returns false (after printing usage) on --help or on a
  /// malformed/unknown flag.
  bool parse(int argc, char** argv);

  std::string get(const std::string& name) const;
  long get_long(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool has(const std::string& name) const;

  std::string usage() const;

 private:
  std::string program_;
  std::string description_;
  std::vector<OptionSpec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace cs2p::cli
