// cs2p_eval — prediction-accuracy evaluation on a CSV dataset.
//
//   cs2p_eval --data traces.csv --horizon 1 --max-sessions 1000
//
// Trains every predictor family on the sessions with day < --test-day and
// evaluates initial + midstream error on the rest (the paper's temporal
// split, §7.1).

#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "dataset/dataset.h"
#include "predictors/evaluation.h"
#include "predictors/ghm.h"
#include "predictors/history.h"
#include "predictors/ml_predictors.h"
#include "predictors/simple_cross.h"
#include "tools/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cs2p;
  cli::ArgParser args("cs2p_eval", "evaluate predictors on a trace dataset");
  args.add_option("data", "input CSV (from cs2p_datagen or external)", "traces.csv");
  args.add_option("test-day", "first test day (earlier days train)", "1");
  args.add_option("horizon", "midstream lookahead in epochs", "1");
  args.add_option("max-sessions", "cap on evaluated test sessions (0 = all)", "1000");
  args.add_option("hmm-states", "CS2P HMM state count", "6");
  args.add_option("min-cluster", "CS2P minimum cluster size", "20");
  if (!args.parse(argc, argv)) return 1;

  const Dataset dataset = Dataset::load_csv(args.get("data"));
  auto [train, test] = dataset.split_by_day(static_cast<int>(args.get_long("test-day")));
  if (train.empty() || test.empty()) {
    std::fprintf(stderr, "need both training and test days in %s\n",
                 args.get("data").c_str());
    return 1;
  }
  std::printf("train %zu / test %zu sessions\n\n", train.size(), test.size());

  Cs2pConfig cs2p_config;
  cs2p_config.hmm.num_states = static_cast<std::size_t>(args.get_long("hmm-states"));
  cs2p_config.selector.min_cluster_size =
      static_cast<std::size_t>(args.get_long("min-cluster"));

  const LastSampleModel ls;
  const HarmonicMeanModel hm;
  const AutoRegressiveModel ar;
  const SvrPredictorModel svr(train);
  const GbrPredictorModel gbr(train);
  const FeatureMedianModel lm_client = make_lm_client(train);
  const GlobalHmmModel ghm(train);
  const Cs2pPredictorModel cs2p(train, cs2p_config);

  EvaluationOptions options;
  options.horizon = static_cast<unsigned>(args.get_long("horizon"));
  options.max_sessions = static_cast<std::size_t>(args.get_long("max-sessions"));

  TextTable table({"predictor", "initial median", "midstream median",
                   "midstream p75"});
  for (const PredictorModel* model :
       std::vector<const PredictorModel*>{&ls, &hm, &ar, &svr, &gbr, &lm_client,
                                          &ghm, &cs2p}) {
    const PredictorEvaluation eval = evaluate_predictor(*model, test, options);
    table.add_row({eval.predictor_name,
                   eval.initial_errors.empty()
                       ? "-"
                       : format_double(eval.initial_median_error, 3),
                   format_double(eval.midstream_summary.median_of_medians, 3),
                   format_double(eval.midstream_summary.p75_of_medians, 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
