// cs2p_qoe_compare — QoE comparison of adaptation strategies on a trace dataset.
//
//   cs2p_qoe_compare --data traces.csv --max-sessions 150
//
// Replays test sessions through the player simulator under BB, RB, HM+MPC
// and CS2P+MPC (all MPC arms with the RobustMPC discount) and prints
// offline-optimal-normalised QoE.

#include <cstdio>
#include <memory>

#include "abr/controllers.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "core/engine.h"
#include "dataset/dataset.h"
#include "predictors/history.h"
#include "tools/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cs2p;
  cli::ArgParser args("cs2p_qoe_compare", "QoE comparison of ABR strategies");
  args.add_option("data", "input CSV dataset", "traces.csv");
  args.add_option("test-day", "first test day", "1");
  args.add_option("max-sessions", "cap on evaluated sessions (0 = all)", "150");
  args.add_option("horizon", "MPC lookahead chunks", "5");
  args.add_option("robust", "1 = RobustMPC discount, 0 = plain FastMPC", "1");
  if (!args.parse(argc, argv)) return 1;

  const Dataset dataset = Dataset::load_csv(args.get("data"));
  auto [train, test] = dataset.split_by_day(static_cast<int>(args.get_long("test-day")));
  if (train.empty() || test.empty()) {
    std::fprintf(stderr, "need both training and test days\n");
    return 1;
  }

  const Cs2pPredictorModel cs2p(std::move(train));
  const HarmonicMeanModel hm;

  AbrEvaluationOptions options;
  options.max_sessions = static_cast<std::size_t>(args.get_long("max-sessions"));
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.horizon = static_cast<unsigned>(args.get_long("horizon"));
  mpc_config.robust = args.get_long("robust") != 0;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const auto rb = [] { return std::make_unique<RateBasedController>(); };

  TextTable table({"strategy", "median n-QoE", "avg kbps", "GoodRatio",
                   "rebuf s", "startup s"});
  const AbrEvaluation evals[] = {
      evaluate_abr("BB", nullptr, bb, test, options),
      evaluate_abr("RB (HM)", &hm, rb, test, options),
      evaluate_abr("HM + MPC", &hm, mpc, test, options),
      evaluate_abr("CS2P + MPC", &cs2p, mpc, test, options),
  };
  for (const auto& eval : evals) {
    table.add_row({eval.label, format_double(eval.median_n_qoe, 3),
                   format_double(eval.avg_bitrate_kbps, 0),
                   format_double(eval.good_ratio, 3),
                   format_double(eval.mean_rebuffer_seconds, 2),
                   format_double(eval.mean_startup_seconds, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
