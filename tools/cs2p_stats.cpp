// cs2p_stats — scrape a running cs2p_serve over the STATS verb.
//
//   cs2p_stats --port 9000                 pretty-print the current stats
//   cs2p_stats --port 9000 --raw 1         dump the raw text exposition
//   cs2p_stats --port 9000 --diff 5        scrape twice, 5 s apart, and
//                                          print what moved in between
//   cs2p_stats --peers 9000,9001,9002      scrape every replica of a tier
//                                          and print a merged/diffed view
//
// The pretty printer folds histogram families into one line with count,
// mean and interpolated p50/p90/p99 (from the cumulative le-buckets); the
// diff mode shows counter/histogram deltas and gauge old -> new, which is
// the quickest way to answer "what is this server doing right now".
//
// --peers prints one row per series with the tier-wide total and the
// per-replica values side by side, so a skewed replica (one node eating all
// the HELLOs, one rejecting SYNCs) is visible at a glance; combined with
// --diff it shows per-replica deltas. A replica that cannot be scraped is
// reported and skipped — a dead node must not hide the survivors' stats.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/metrics.h"
#include "tools/cli.h"

namespace {

using cs2p::obs::kMetricsExpositionVersion;

struct Scrape {
  int version = 0;
  /// Rendered series key ("name{labels}") -> value, in exposition order.
  std::map<std::string, double> series;
};

Scrape parse_exposition(const cs2p::StatsResponse& response) {
  Scrape out;
  out.version = response.exposition_version;
  const std::string& text = response.exposition;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    try {
      out.series.emplace(line.substr(0, space), std::stod(line.substr(space + 1)));
    } catch (const std::exception&) {
      // Tolerate unknown grammar extensions: skip, don't die.
    }
  }
  return out;
}

Scrape scrape_server(std::uint16_t port) {
  cs2p::PredictionClient client(port);
  const cs2p::StatsResponse response = client.stats();
  if (response.exposition_version != kMetricsExpositionVersion)
    std::fprintf(stderr,
                 "warning: server speaks exposition v%d, this tool expects "
                 "v%d — printing what parses\n",
                 response.exposition_version, kMetricsExpositionVersion);
  return parse_exposition(response);
}

/// One histogram family reassembled from its exposition series.
struct HistogramFamily {
  std::vector<std::pair<double, double>> buckets;  ///< (le, cumulative)
  double sum = 0.0;
  double count = 0.0;
};

/// "name_bucket{...,le="x"}" -> family key "name{...}" + bound; false for
/// non-bucket series.
bool split_bucket_key(const std::string& key, std::string* family, double* le) {
  const std::size_t marker = key.find("_bucket");
  if (marker == std::string::npos) return false;
  const std::size_t le_pos = key.find("le=\"", marker);
  if (le_pos == std::string::npos) return false;
  const std::size_t le_end = key.find('"', le_pos + 4);
  if (le_end == std::string::npos) return false;
  const std::string bound = key.substr(le_pos + 4, le_end - le_pos - 4);
  *le = bound == "+Inf" ? std::numeric_limits<double>::infinity()
                        : std::stod(bound);
  // Family key: name + labels minus the le pair (and its separator comma).
  std::string rest = key.substr(marker + 7);  // "{...}" or "{le=...}"
  std::size_t cut_begin = rest.find("le=\"");
  std::size_t cut_end = rest.find('"', cut_begin + 4) + 1;
  if (cut_begin != std::string::npos) {
    if (cut_begin > 1 && rest[cut_begin - 1] == ',') --cut_begin;  // ",le=..."
    else if (rest[cut_end] == ',') ++cut_end;                      // "le=...,"
    rest.erase(cut_begin, cut_end - cut_begin);
  }
  if (rest == "{}") rest.clear();
  *family = key.substr(0, marker) + rest;
  return true;
}

double family_quantile(const HistogramFamily& h, double q) {
  if (h.count <= 0.0) return 0.0;
  const double rank = q * h.count;
  double prev_le = 0.0, prev_cum = 0.0;
  for (const auto& [le, cum] : h.buckets) {
    if (cum >= rank) {
      if (std::isinf(le)) return prev_le;  // clamp to last finite bound
      const double in_bucket = cum - prev_cum;
      if (in_bucket <= 0.0) return le;
      return prev_le + (le - prev_le) *
                           std::clamp((rank - prev_cum) / in_bucket, 0.0, 1.0);
    }
    prev_le = std::isinf(le) ? prev_le : le;
    prev_cum = cum;
  }
  return prev_le;
}

/// One cluster's row of the trainer model table (pretty view): the
/// per-cluster gauges cs2p_trainer_cluster_generation{cluster="k"} and
/// cs2p_trainer_cluster_model_age_seconds{cluster="k"} fold into one line
/// per cluster instead of two interleaved scalar dumps.
struct ClusterModelRow {
  double generation = std::numeric_limits<double>::quiet_NaN();
  double age_seconds = std::numeric_limits<double>::quiet_NaN();
};

/// Consumes a per-cluster trainer gauge into `rows`; false for everything
/// else (the series stays a plain scalar).
bool fold_cluster_model_series(const std::string& key, double value,
                               std::map<std::string, ClusterModelRow>& rows) {
  const bool is_generation =
      key.starts_with("cs2p_trainer_cluster_generation{");
  const bool is_age =
      !is_generation &&
      key.starts_with("cs2p_trainer_cluster_model_age_seconds{");
  if (!is_generation && !is_age) return false;
  const std::size_t label = key.find("cluster=\"");
  if (label == std::string::npos) return false;
  const std::size_t begin = label + 9;
  const std::size_t end = key.find('"', begin);
  if (end == std::string::npos) return false;
  auto& row = rows[key.substr(begin, end - begin)];
  (is_generation ? row.generation : row.age_seconds) = value;
  return true;
}

void pretty_print(const Scrape& scrape) {
  std::map<std::string, HistogramFamily> histograms;
  std::map<std::string, ClusterModelRow> cluster_models;
  std::vector<std::pair<std::string, double>> scalars;
  for (const auto& [key, value] : scrape.series) {
    std::string family;
    double le = 0.0;
    if (split_bucket_key(key, &family, &le)) {
      histograms[family].buckets.emplace_back(le, value);
      continue;
    }
    if (fold_cluster_model_series(key, value, cluster_models)) continue;
    const std::size_t brace = key.find('{');
    const std::string name = key.substr(0, brace);
    if (name.size() > 4 && name.ends_with("_sum")) {
      const std::string fam = name.substr(0, name.size() - 4) +
                              (brace == std::string::npos ? "" : key.substr(brace));
      if (histograms.contains(fam) || scrape.series.contains(
              name.substr(0, name.size() - 4) + "_count" +
              (brace == std::string::npos ? "" : key.substr(brace)))) {
        histograms[fam].sum = value;
        continue;
      }
    }
    if (name.size() > 6 && name.ends_with("_count")) {
      const std::string fam = name.substr(0, name.size() - 6) +
                              (brace == std::string::npos ? "" : key.substr(brace));
      if (histograms.contains(fam)) {
        histograms[fam].count = value;
        continue;
      }
    }
    scalars.emplace_back(key, value);
  }

  for (const auto& [key, value] : scalars)
    std::printf("%-56s %.6g\n", key.c_str(), value);
  for (auto& [family, h] : histograms) {
    std::sort(h.buckets.begin(), h.buckets.end());
    if (h.count == 0.0 && !h.buckets.empty()) h.count = h.buckets.back().second;
    const double mean = h.count > 0.0 ? h.sum / h.count : 0.0;
    std::printf("%-56s count=%.0f mean=%.3gs p50=%.3gs p90=%.3gs p99=%.3gs\n",
                family.c_str(), h.count, mean, family_quantile(h, 0.5),
                family_quantile(h, 0.9), family_quantile(h, 0.99));
  }
  if (!cluster_models.empty()) {
    std::printf("# trainer per-cluster models\n");
    std::printf("%-44s %12s %14s\n", "# cluster", "generation", "model age");
    for (const auto& [cluster, row] : cluster_models) {
      std::printf("%-44s ", cluster.c_str());
      if (std::isnan(row.generation)) std::printf("%12s ", "-");
      else std::printf("%12.0f ", row.generation);
      if (std::isnan(row.age_seconds)) std::printf("%14s\n", "-");
      else std::printf("%13.1fs\n", row.age_seconds);
    }
  }
}

void print_diff(const Scrape& before, const Scrape& after, long seconds) {
  std::printf("# delta over %ld s\n", seconds);
  for (const auto& [key, new_value] : after.series) {
    const auto it = before.series.find(key);
    const double old_value = it == before.series.end() ? 0.0 : it->second;
    if (new_value == old_value) continue;
    std::printf("%-56s %+.6g  (%.6g -> %.6g)\n", key.c_str(),
                new_value - old_value, old_value, new_value);
  }
}

/// "9000,9001" -> {9000, 9001}.
std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const long port = std::stol(token);
    if (port <= 0 || port > 65535)
      throw std::runtime_error("bad port in --peers: " + token);
    ports.push_back(static_cast<std::uint16_t>(port));
  }
  return ports;
}

/// Scrape of one replica; `ok` false when the node could not be reached
/// (its column prints as "-" so the survivors still line up).
struct ReplicaScrape {
  std::uint16_t port = 0;
  bool ok = false;
  Scrape scrape;
};

std::vector<ReplicaScrape> scrape_tier(const std::vector<std::uint16_t>& ports) {
  std::vector<ReplicaScrape> out;
  out.reserve(ports.size());
  for (const std::uint16_t port : ports) {
    ReplicaScrape replica;
    replica.port = port;
    try {
      replica.scrape = scrape_server(port);
      replica.ok = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: replica 127.0.0.1:%u unreachable (%s)\n",
                   port, e.what());
    }
    out.push_back(std::move(replica));
  }
  return out;
}

/// Union of series keys -> per-replica column (NaN where absent/dead).
std::map<std::string, std::vector<double>> tier_table(
    const std::vector<ReplicaScrape>& tier) {
  std::map<std::string, std::vector<double>> table;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < tier.size(); ++i) {
    if (!tier[i].ok) continue;
    for (const auto& [key, value] : tier[i].scrape.series) {
      auto& row = table[key];
      row.resize(tier.size(), nan);
      row[i] = value;
    }
  }
  return table;
}

/// Width of the series-name column: the longest key, so long histogram
/// bucket labels cannot push their values out of alignment.
int key_column_width(const std::map<std::string, std::vector<double>>& table) {
  std::size_t width = 56;
  for (const auto& [key, row] : table) width = std::max(width, key.size());
  return static_cast<int>(width);
}

void print_merged(const std::vector<ReplicaScrape>& tier) {
  std::printf("# replicas:");
  for (const auto& replica : tier)
    std::printf(" 127.0.0.1:%u%s", replica.port, replica.ok ? "" : "(down)");
  const auto table = tier_table(tier);
  const int width = key_column_width(table);
  std::printf("\n%-*s %12s  per-replica\n", width, "# series", "total");
  for (const auto& [key, row] : table) {
    double total = 0.0;
    for (const double v : row)
      if (!std::isnan(v)) total += v;
    std::printf("%-*s %12.6g ", width, key.c_str(), total);
    for (const double v : row) {
      if (std::isnan(v)) std::printf("  %10s", "-");
      else std::printf("  %10.6g", v);
    }
    std::printf("\n");
  }
}

void print_merged_diff(const std::vector<ReplicaScrape>& before,
                       const std::vector<ReplicaScrape>& after, long seconds) {
  std::printf("# tier delta over %ld s\n", seconds);
  const auto old_table = tier_table(before);
  const auto new_table = tier_table(after);
  const int width = key_column_width(new_table);
  for (const auto& [key, row] : new_table) {
    const auto it = old_table.find(key);
    double total_delta = 0.0;
    std::vector<double> deltas(row.size(),
                               std::numeric_limits<double>::quiet_NaN());
    bool moved = false;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (std::isnan(row[i])) continue;
      const double old_value =
          it != old_table.end() && i < it->second.size() &&
                  !std::isnan(it->second[i])
              ? it->second[i]
              : 0.0;
      deltas[i] = row[i] - old_value;
      total_delta += deltas[i];
      if (deltas[i] != 0.0) moved = true;
    }
    if (!moved) continue;
    std::printf("%-*s %+12.6g ", width, key.c_str(), total_delta);
    for (const double d : deltas) {
      if (std::isnan(d)) std::printf("  %10s", "-");
      else std::printf("  %+10.6g", d);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cs2p;
  cli::ArgParser args("cs2p_stats", "scrape a cs2p_serve metrics registry");
  args.add_option("port", "cs2p_serve port on 127.0.0.1", "9000");
  args.add_option("raw", "dump the raw text exposition (1/0)", "0");
  args.add_option("diff",
                  "scrape twice, N seconds apart, and print the deltas "
                  "(0 = single scrape)", "0");
  args.add_option("peers",
                  "comma-separated replica ports; scrape every one and print "
                  "a merged per-replica view (overrides --port)", "");
  if (!args.parse(argc, argv)) return 1;

  const std::vector<std::uint16_t> peer_ports = parse_ports(args.get("peers"));
  if (!peer_ports.empty()) {
    const long tier_diff_s = args.get_long("diff");
    const auto first = scrape_tier(peer_ports);
    if (tier_diff_s <= 0) {
      print_merged(first);
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::seconds(tier_diff_s));
    print_merged_diff(first, scrape_tier(peer_ports), tier_diff_s);
    return 0;
  }

  const auto port = static_cast<std::uint16_t>(args.get_long("port"));
  if (args.get_long("raw") != 0) {
    PredictionClient client(port);
    const StatsResponse response = client.stats();
    std::fwrite(response.exposition.data(), 1, response.exposition.size(),
                stdout);
    return 0;
  }

  const long diff_s = args.get_long("diff");
  const Scrape first = scrape_server(port);
  if (diff_s <= 0) {
    pretty_print(first);
    return 0;
  }
  std::this_thread::sleep_for(std::chrono::seconds(diff_s));
  print_diff(first, scrape_server(port), diff_s);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cs2p_stats: %s\n", e.what());
  return 1;
}
