// cs2p_datagen — generate a synthetic session-trace dataset to CSV.
//
//   cs2p_datagen --out traces.csv --sessions 20000 --seed 7
//
// The CSV round-trips through Dataset::load_csv, so the other tools (and
// any external pipeline) can consume it.

#include <cstdio>

#include "dataset/synthetic.h"
#include "tools/cli.h"

int main(int argc, char** argv) {
  using namespace cs2p;
  cli::ArgParser args("cs2p_datagen", "generate a synthetic trace dataset");
  args.add_option("out", "output CSV path", "traces.csv");
  args.add_option("sessions", "number of sessions", "16000");
  args.add_option("seed", "world/generation seed", "2016");
  args.add_option("days", "dataset days (day 0 trains, rest test)", "2");
  args.add_option("isps", "number of ISPs", "6");
  args.add_option("provinces", "number of provinces", "8");
  args.add_option("cities-per-province", "cities per province", "3");
  args.add_option("servers", "number of CDN servers", "12");
  args.add_option("prefixes", "client /16 prefixes per (ISP, city)", "2");
  args.add_option("burst-prob", "per-epoch transient burst probability", "0.15");
  if (!args.parse(argc, argv)) return 1;

  SyntheticConfig config;
  config.num_sessions = static_cast<std::size_t>(args.get_long("sessions"));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed"));
  config.days = static_cast<int>(args.get_long("days"));
  config.num_isps = static_cast<std::size_t>(args.get_long("isps"));
  config.num_provinces = static_cast<std::size_t>(args.get_long("provinces"));
  config.cities_per_province =
      static_cast<std::size_t>(args.get_long("cities-per-province"));
  config.num_servers = static_cast<std::size_t>(args.get_long("servers"));
  config.prefixes_per_isp_city = static_cast<std::size_t>(args.get_long("prefixes"));
  config.burst_probability = args.get_double("burst-prob");

  const Dataset dataset = generate_synthetic_dataset(config);
  dataset.save_csv(args.get("out"));

  const DatasetSummary summary = dataset.summarize();
  std::printf("wrote %zu sessions (%zu epochs) to %s\n", summary.num_sessions,
              summary.total_epochs, args.get("out").c_str());
  std::printf("median duration %.0f s, median epoch throughput %.2f Mbps\n",
              summary.median_duration_seconds, summary.median_epoch_throughput_mbps);
  return 0;
}
