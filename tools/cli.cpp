#include "tools/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cs2p::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_.push_back({name, help, default_value});
  values_[name] = default_value;
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s needs a value\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    if (!values_.contains(arg)) {
      std::fprintf(stderr, "unknown flag --%s\n%s", arg.c_str(), usage().c_str());
      return false;
    }
    values_[arg] = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw std::logic_error("ArgParser: unregistered option " + name);
  return it->second;
}

long ArgParser::get_long(const std::string& name) const {
  return std::stol(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::has(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && !it->second.empty();
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& spec : specs_) {
    os << "  --" << spec.name;
    if (!spec.default_value.empty()) os << " (default: " << spec.default_value << ")";
    os << "\n      " << spec.help << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace cs2p::cli
