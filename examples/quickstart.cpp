// Quickstart: train a CS2P prediction engine on synthetic traces and drive
// a test session through it — the 60-second tour of the public API.
//
//   1. Generate a two-day synthetic dataset (day 0 trains, day 1 tests).
//   2. Build a Cs2pEngine: session clustering + per-cluster HMMs.
//   3. For one test session: predict the initial throughput, then replay the
//      session epoch by epoch, printing forecast vs. measurement.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "predictors/predictor.h"
#include "util/error_metrics.h"

int main() {
  using namespace cs2p;

  // 1. A small synthetic world (see dataset/synthetic.h for the knobs).
  SyntheticConfig config;
  config.num_sessions = 6000;
  config.seed = 1;
  Dataset dataset = generate_synthetic_dataset(config);
  auto [train, test] = dataset.split_by_day(/*first_test_day=*/1);
  std::printf("dataset: %zu sessions (%zu train / %zu test)\n", dataset.size(),
              train.size(), test.size());

  // 2. Train the engine. Cs2pConfig exposes the paper's knobs: the HMM state
  //    count, the min-cluster-size threshold, the prediction rule.
  Cs2pConfig engine_config;
  engine_config.hmm.num_states = 6;
  Cs2pPredictorModel cs2p(std::move(train), engine_config);

  // 3. Replay one test session.
  const Session* target = nullptr;
  for (const auto& s : test.sessions()) {
    if (s.throughput_mbps.size() >= 20) {
      target = &s;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("no test session long enough\n");
    return 1;
  }

  std::printf("session #%lld: ISP=%s city=%s server=%s prefix=%s (%zu epochs)\n",
              static_cast<long long>(target->id), target->features.isp.c_str(),
              target->features.city.c_str(), target->features.server.c_str(),
              target->features.client_prefix.c_str(),
              target->throughput_mbps.size());

  auto predictor = cs2p.make_session(SessionContext::from(*target));
  const double initial = predictor->predict_initial().value_or(0.0);
  std::printf("initial: predicted %.2f Mbps, actual %.2f Mbps (err %.1f%%)\n",
              initial, target->throughput_mbps[0],
              100.0 * absolute_normalized_error(initial, target->throughput_mbps[0]));

  std::printf("%-6s %-12s %-12s %-8s\n", "epoch", "forecast", "actual", "err%");
  double total_err = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t + 1 < target->throughput_mbps.size(); ++t) {
    predictor->observe(target->throughput_mbps[t]);
    const double forecast = predictor->predict(1);
    const double actual = target->throughput_mbps[t + 1];
    const double err = absolute_normalized_error(forecast, actual);
    total_err += err;
    ++count;
    if (t < 10) {
      std::printf("%-6zu %-12.2f %-12.2f %-8.1f\n", t + 1, forecast, actual,
                  100.0 * err);
    }
  }
  std::printf("... mean midstream error over %zu epochs: %.1f%%\n", count,
              100.0 * total_err / static_cast<double>(count));

  const EngineStats stats = cs2p.engine().stats();
  std::printf("engine: %zu sessions served, %zu on the global fallback, "
              "%zu cluster HMMs trained\n",
              stats.sessions_served, stats.global_fallbacks, stats.clusters_trained);
  return 0;
}
