// Trace analysis: reproduce the paper's §3 dataset observations on a
// generated trace set, and decode a session's hidden states with Viterbi —
// the "Fig 4a" view of stateful throughput.

#include <cstdio>

#include "dataset/synthetic.h"
#include "hmm/baum_welch.h"
#include "hmm/viterbi.h"
#include "util/stats.h"

int main() {
  using namespace cs2p;

  SyntheticConfig config;
  config.num_sessions = 8000;
  config.seed = 7;
  SyntheticWorld world(config);
  Dataset dataset = world.generate();

  const DatasetSummary summary = dataset.summarize();
  std::printf("sessions: %zu  epochs: %zu\n", summary.num_sessions,
              summary.total_epochs);
  for (const auto& [feature, uniques] : summary.unique_values)
    std::printf("  %-12s %zu unique values\n",
                std::string(feature_name(feature)).c_str(), uniques);
  std::printf("median duration: %.0f s, median epoch throughput: %.2f Mbps\n",
              summary.median_duration_seconds, summary.median_epoch_throughput_mbps);

  // Observation 1: intra-session variability.
  const auto covs = dataset.per_session_cov();
  std::printf("\nObservation 1 — per-session throughput CoV:\n");
  std::printf("  fraction with CoV >= 0.3: %.2f (paper: ~0.5)\n",
              1.0 - ecdf(covs, 0.3));
  std::printf("  fraction with CoV >= 0.5: %.2f (paper: >0.2)\n",
              1.0 - ecdf(covs, 0.5));

  // Observation 2: fit an HMM to one long session and decode its states.
  const Session* longest = nullptr;
  for (const auto& s : dataset.sessions())
    if (longest == nullptr ||
        s.throughput_mbps.size() > longest->throughput_mbps.size())
      longest = &s;

  BaumWelchConfig hmm_config;
  hmm_config.num_states = 4;
  const auto trained = train_hmm({longest->throughput_mbps}, hmm_config);
  const auto decoded = viterbi(trained.model, longest->throughput_mbps);

  std::printf("\nObservation 2 — session #%lld (%zu epochs), 4-state HMM fit:\n",
              static_cast<long long>(longest->id), longest->throughput_mbps.size());
  for (std::size_t i = 0; i < trained.model.num_states(); ++i)
    std::printf("  state %zu: N(%.2f, %.2f^2) Mbps, stay prob %.3f\n", i,
                trained.model.states[i].mean, trained.model.states[i].sigma,
                trained.model.transition(i, i));

  std::size_t switches = 0;
  for (std::size_t t = 1; t < decoded.path.size(); ++t)
    if (decoded.path[t] != decoded.path[t - 1]) ++switches;
  std::printf("  Viterbi path: %zu state switches over %zu epochs "
              "(persistent states)\n",
              switches, decoded.path.size());

  // Observation 3: initial-throughput concentration within a cluster.
  std::printf("\nObservation 3 — per-prefix initial throughput spread:\n");
  std::map<std::string, std::vector<double>> by_prefix;
  for (const auto& s : dataset.sessions())
    if (!s.throughput_mbps.empty())
      by_prefix[s.features.client_prefix].push_back(s.initial_throughput());
  std::size_t shown = 0;
  for (const auto& [prefix, initials] : by_prefix) {
    if (initials.size() < 30) continue;
    std::printf("  %-10s n=%-5zu median=%.2f Mbps IQR=[%.2f, %.2f]\n",
                prefix.c_str(), initials.size(), median(initials),
                quantile(initials, 0.25), quantile(initials, 0.75));
    if (++shown == 5) break;
  }
  return 0;
}
