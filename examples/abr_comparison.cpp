// ABR comparison: replay test sessions through the player simulator under
// the adaptation strategies of §7.3 and print QoE side by side:
//
//   BB          — buffer-based, no prediction
//   RB          — rate-based on a harmonic-mean forecast
//   HM + MPC    — the state-of-art baseline the paper compares against
//   CS2P + MPC  — the paper's system
//
// Each session's QoE is normalised by its offline optimum (n-QoE).

#include <cstdio>
#include <memory>

#include "abr/controllers.h"
#include "abr/festive.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "predictors/history.h"

int main() {
  using namespace cs2p;

  SyntheticConfig config;
  config.num_sessions = 5000;
  config.seed = 3;
  Dataset dataset = generate_synthetic_dataset(config);
  auto [train, test] = dataset.split_by_day(1);

  Cs2pPredictorModel cs2p(std::move(train));
  HarmonicMeanModel hm;

  AbrEvaluationOptions options;
  options.max_sessions = 150;
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.robust = true;  // RobustMPC discount for every predictor arm
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const auto rb = [] { return std::make_unique<RateBasedController>(); };
  const auto festive = [] { return std::make_unique<FestiveController>(); };

  const AbrEvaluation results[] = {
      evaluate_abr("BB", nullptr, bb, test, options),
      evaluate_abr("RB (HM)", &hm, rb, test, options),
      evaluate_abr("FESTIVE", nullptr, festive, test, options),
      evaluate_abr("HM + MPC", &hm, mpc, test, options),
      evaluate_abr("CS2P + MPC", &cs2p, mpc, test, options),
  };

  std::printf("%-12s %-10s %-10s %-12s %-10s %-10s\n", "strategy", "med nQoE",
              "mean nQoE", "avg kbps", "GoodRatio", "rebuf s");
  for (const auto& r : results) {
    std::printf("%-12s %-10.3f %-10.3f %-12.0f %-10.3f %-10.2f\n", r.label.c_str(),
                r.median_n_qoe, r.mean_n_qoe, r.avg_bitrate_kbps, r.good_ratio,
                r.mean_rebuffer_seconds);
  }
  return 0;
}
