// Prediction service demo: the server-side deployment of §6 on loopback.
//
// A PredictionServer is loaded with a trained CS2P engine; a player-side
// PredictionClient registers a session (HELLO), then alternates
// measurement reports (OBSERVE) with forecasts — one TCP round trip per
// epoch, exactly like the dash.js player POSTing to the Node.js server.

#include <chrono>
#include <cstdio>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "predictors/hmm_session.h"

int main() {
  using namespace cs2p;
  using Clock = std::chrono::steady_clock;

  SyntheticConfig config;
  config.num_sessions = 4000;
  config.seed = 5;
  Dataset dataset = generate_synthetic_dataset(config);
  auto [train, test] = dataset.split_by_day(1);

  auto model = std::make_shared<Cs2pPredictorModel>(std::move(train));
  PredictionServer server(model);
  std::printf("prediction server listening on 127.0.0.1:%u\n", server.port());

  PredictionClient client(server.port());

  const Session* target = nullptr;
  for (const auto& s : test.sessions())
    if (s.throughput_mbps.size() >= 15) {
      target = &s;
      break;
    }
  if (target == nullptr) return 1;

  const auto hello_start = Clock::now();
  const SessionResponse session =
      client.hello(target->features, target->start_hour);
  const auto hello_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - hello_start)
                            .count();
  std::printf("HELLO -> session %llu, initial %.2f Mbps (%lld us round trip)\n",
              static_cast<unsigned long long>(session.session_id),
              session.initial_mbps, static_cast<long long>(hello_us));

  double total_us = 0.0;
  for (std::size_t t = 0; t < 10; ++t) {
    const double measured = target->throughput_mbps[t];
    const auto start = Clock::now();
    const double forecast = client.observe(session.session_id, measured);
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
            .count();
    total_us += static_cast<double>(us);
    std::printf("epoch %zu: measured %.2f -> next-epoch forecast %.2f  (%lld us)\n",
                t, measured, forecast, static_cast<long long>(us));
  }
  std::printf("mean OBSERVE round trip: %.0f us (paper reports ~5 ms incl. HTTP)\n",
              total_us / 10.0);

  const double ahead = client.predict(session.session_id, 5);
  std::printf("5-epoch-ahead forecast: %.2f Mbps\n", ahead);
  client.bye(session.session_id);

  // Client-side mode (paper SS5.3): download the compact model once and run
  // it locally -- zero round trips per epoch afterwards.
  const DownloadableModel downloaded =
      client.download_model(target->features, target->start_hour);
  std::printf("\nclient-side mode: downloaded %zu-state model (%zu bytes, "
              "global=%d)\n",
              downloaded.hmm.num_states(), downloaded.hmm.byte_size(),
              downloaded.used_global_model ? 1 : 0);
  HmmSessionPredictor local(downloaded.hmm, downloaded.initial_mbps);
  for (std::size_t t = 0; t < 3; ++t) {
    local.observe(target->throughput_mbps[t]);
    std::printf("  local epoch %zu: forecast %.2f Mbps (no network)\n", t,
                local.predict(1));
  }
  std::printf("served %llu requests total\n",
              static_cast<unsigned long long>(server.requests_handled()));
  return 0;
}
