// Model selection: choose the HMM state count by cross-validation (§5.2:
// "we use cross-validation to learn this critical parameter"; §7.1: 4-fold,
// the paper lands on N = 6).
//
// The sweep trains one HMM per candidate N on a cluster's sessions and
// scores held-out one-step prediction error; it also demonstrates the
// predictive-distribution API that powers risk-aware decisions.

#include <cstdio>
#include <map>

#include "dataset/synthetic.h"
#include "hmm/model_selection.h"
#include "hmm/online_filter.h"

int main() {
  using namespace cs2p;

  // Sessions of one dense ground-truth cluster.
  SyntheticConfig config;
  config.num_isps = 6;
  config.num_provinces = 8;
  config.cities_per_province = 3;
  config.num_servers = 12;
  config.servers_per_province = 2;
  config.prefixes_per_isp_city = 2;
  config.num_sessions = 12000;
  config.seed = 11;
  Dataset dataset = generate_synthetic_dataset(config);

  // Find the feature tuple with the most sessions.
  std::map<std::string, std::vector<const Session*>> clusters;
  for (const auto& s : dataset.sessions())
    clusters[feature_key(s.features, kAllFeaturesMask)].push_back(&s);
  const std::vector<const Session*>* biggest = nullptr;
  for (const auto& [key, sessions] : clusters)
    if (biggest == nullptr || sessions.size() > biggest->size())
      biggest = &sessions;

  std::vector<std::vector<double>> sequences;
  for (const Session* s : *biggest)
    if (s->throughput_mbps.size() >= 10) sequences.push_back(s->throughput_mbps);
  std::printf("cluster with %zu usable sessions\n", sequences.size());

  BaumWelchConfig base;
  base.max_iterations = 40;
  const ModelSelectionResult result =
      select_state_count(sequences, {2, 3, 4, 6, 8, 10}, /*folds=*/4, base);

  std::printf("%-10s %-12s\n", "N states", "CV error");
  for (const auto& score : result.scores)
    std::printf("%-10zu %-12.4f%s\n", score.num_states, score.cv_error,
                score.num_states == result.best_num_states ? "  <- selected" : "");

  // Train the winner and show a probabilistic forecast.
  base.num_states = result.best_num_states;
  const GaussianHmm model = train_hmm(sequences, base).model;
  OnlineHmmFilter filter(model);
  for (double w : sequences.front()) {
    filter.observe(w);
    if (filter.observations() == 5) break;
  }
  const auto forecast = filter.predict_distribution(1);
  std::printf("\nafter 5 epochs: next-epoch forecast %.2f Mbps "
              "(+/- %.2f std), point forecast %.2f Mbps\n",
              forecast.mean, forecast.std_dev, filter.predict(1));
  return 0;
}
